"""Codec-derived exact group-count simulation of deterministic protocols.

The hand-written :class:`~repro.protocols.ranking.aggregate_space_efficient.
AggregateSpaceEfficientRanking` engine shows what count-level simulation buys:
``O(n)`` productive events instead of ``Θ(n² log n)`` interactions.  Its event
decomposition, however, was derived by hand and speaks only one protocol.
This module derives the same kind of engine *automatically* for any protocol
whose transition function is a pure function of the two participating states
(``consumes_randomness() is False``): the :class:`~repro.core.codec.StateCodec`
interns every distinct state, :func:`~repro.core.codec.evaluate_pair`
tabulates ordered state pairs on demand, and the simulator runs the exact
geometric no-op-skipping event process on a state-count vector.

Exactness
---------
The count process is the lumped Markov chain of the agent-level process: for
a deterministic protocol the multiset of states is itself Markov, and every
ordered pair ``(i, j)`` of states is realized by ``c[i]·c[j]`` ordered agent
pairs (``c[i]·(c[i]-1)`` on the diagonal).  Transitions whose successor
multiset equals the argument multiset — including agent-level *swaps*
``(i, j) → (j, i)`` — never change a count and are skipped along with the
plain no-ops; the waiting time to the next count-changing interaction is
geometric with success probability ``W / (n·(n-1))`` where ``W`` is the total
weight of count-changing ("productive") pairs.  Every count observable, and
every hitting time of a count event measured in interactions, therefore has
*exactly* the agent-level distribution ("distribution" exactness class);
individual agent trajectories are not modeled.

Tabulation is lazy, permanent, and shared: a :class:`GroupTransitionModel`
holds the productive-pair table for a protocol instance, simulators attach to
it, and the invariant is that every state that has ever been occupied by any
attached simulator is tabulated against every other ever-occupied state.
The cost is ``O(D²)`` transition evaluations where ``D`` is the number of
distinct states actually visited — four for the one-way epidemic, bounded by
``max_states`` (default 4096) in general — and it is paid *once* per model,
so the 200-seed sweeps of a study cell amortize it.

Two sampling paths keep the per-event cost low:

* the general path factorizes the productive-pair weights by initiator row
  (``rw[i] = c[i]·(S[i] - diag[i])`` with ``S[i]`` the sum of responder
  counts over row ``i``, maintained incrementally through column adjacency)
  and draws one integer uniform ``u ∈ [0, W)``; the row is found by
  ``searchsorted`` on ``cumsum(rw)`` and the residual is reused to pick the
  responder inside the row — all in exact int64 arithmetic, no floating
  renormalization;
* when exactly one productive pair has positive weight and the states it
  touches are touched by no other productive pair, a whole run of events is
  batched: the weight sequence along the batch is computed vectorized, one
  vectorized ``rng.geometric`` call draws every waiting time, and milestones
  are read off the cumulative sum.  The one-way epidemic completes its whole
  ``n - m`` informings as a single batch, which is what makes ``n = 10^6``
  sweeps take milliseconds instead of minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .codec import StateCodec, evaluate_pair
from .errors import (
    CodecError,
    ConfigurationError,
    SimulationLimitExceeded,
    StateSpaceTooLarge,
)
from .protocol import PopulationProtocol
from .rng import RandomState, make_rng

__all__ = [
    "CountGoal",
    "RankingCountGoal",
    "GroupTransitionModel",
    "GroupRunResult",
    "GroupCountSimulator",
    "DEFAULT_MAX_STATES",
]

#: Tabulation budget: distinct ever-occupied states before the run aborts.
DEFAULT_MAX_STATES = 4096


class CountGoal:
    """Progress and termination observable over state counts.

    The group engine never sees individual agents, so convergence must be
    expressed over counts.  A goal keeps whatever tallies it needs, updated
    through :meth:`on_count` as states gain or lose population.

    Contract (both are load-bearing for the engine's batch path):

    * :meth:`measure` is *additive* in the count deltas — feeding the same
      deltas in any order or grouping yields the same measure — and
      :meth:`target` is constant along a run;
    * ``done()`` implies ``measure() == target()``, so the engine knows the
      goal cannot silently complete while the measure is strictly below (or
      moving away from) the target.
    """

    def on_count(self, state: object, delta: int) -> None:
        """Account for ``delta`` agents entering (``> 0``) or leaving ``state``."""
        raise NotImplementedError

    def measure(self) -> int:
        """Current progress scalar (e.g. number of ranked agents)."""
        raise NotImplementedError

    def target(self) -> int:
        """Value of :meth:`measure` at which the goal can be complete."""
        raise NotImplementedError

    def done(self) -> bool:
        """Whether the goal is reached (default: measure equals target)."""
        return self.measure() == self.target()


class RankingCountGoal(CountGoal):
    """Membership in the paper's legal set ``C_L`` read off state counts.

    ``measure()`` is the number of agents whose state carries a rank in
    ``{1, …, n}``; ``done()`` additionally requires those ranks to form a
    permutation, tracked through per-rank occupancy (a count vector knows
    how many agents sit in a state with rank ``r``, and a valid ranking is
    exactly "every rank occupied once").
    """

    def __init__(self, n: int):
        self._n = int(n)
        self._ranked = 0
        self._occupancy: Dict[int, int] = {}
        self._duplicates = 0

    def on_count(self, state: object, delta: int) -> None:
        rank = getattr(state, "rank", None)
        if rank is None or not 1 <= rank <= self._n:
            return
        occupancy = self._occupancy
        before = occupancy.get(rank, 0)
        after = before + delta
        occupancy[rank] = after
        self._ranked += delta
        self._duplicates += max(0, after - 1) - max(0, before - 1)

    def measure(self) -> int:
        return self._ranked

    def target(self) -> int:
        return self._n

    def done(self) -> bool:
        return self._ranked == self._n and self._duplicates == 0


class GroupTransitionModel:
    """Shared productive-pair table for a protocol, tabulated lazily.

    Holds the codec, the set of tabulated (ever-occupied) states, the
    successor map of count-changing ordered pairs, and dense adjacency
    arrays derived from them.  Multiple :class:`GroupCountSimulator`
    instances (e.g. the seeds of a study cell) attach to one model and
    share the tabulation cost; the ``version`` counter tells simulators
    when to re-sync their count-dependent caches.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        codec: Optional[StateCodec] = None,
        max_states: int = DEFAULT_MAX_STATES,
    ):
        self.protocol = protocol
        self.codec = codec if codec is not None else StateCodec()
        self.max_states = int(max_states)
        self.version = 0
        self._tabulated: List[int] = []
        self._tabulated_set: set = set()
        self.successors: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.row_lists: Dict[int, List[int]] = {}
        self.col_lists: Dict[int, List[int]] = {}
        self._dirty = False
        self._rebuild_dense()

    @property
    def tabulated_states(self) -> int:
        """Number of ever-occupied states tabulated so far."""
        return len(self._tabulated)

    @property
    def size(self) -> int:
        """Number of interned states (tabulated states plus their successors)."""
        return self.codec.size

    def ensure_tabulated(self, code: int) -> bool:
        """Tabulate ``code`` against every previously tabulated state.

        Successor states interned along the way are *not* tabulated until
        they become occupied (the invariant is occupied ⊆ tabulated).
        Returns whether anything new was tabulated; the dense arrays are
        rebuilt lazily on the next :meth:`refresh` (so a burst of new
        states pays for one rebuild, not one per state).
        """
        if code in self._tabulated_set:
            return False
        if len(self._tabulated) >= self.max_states:
            raise StateSpaceTooLarge(
                f"{self.protocol.name}: group-count tabulation exceeded "
                f"max_states={self.max_states} distinct occupied states"
            )
        self._tabulated_set.add(code)
        self._tabulated.append(code)
        protocol, codec = self.protocol, self.codec
        for other in self._tabulated:
            ordered = ((code, other),) if other == code else (
                (code, other), (other, code),
            )
            for x, y in ordered:
                outcome = evaluate_pair(protocol, codec, x, y)
                a, b = outcome.next_initiator, outcome.next_responder
                if (a, b) != (x, y) and (a, b) != (y, x):
                    # Count-level productive: the successor multiset differs.
                    self.successors[(x, y)] = (a, b)
                    self.row_lists.setdefault(x, []).append(y)
                    self.col_lists.setdefault(y, []).append(x)
        self._dirty = True
        return True

    def is_tabulated(self, code: int) -> bool:
        return code in self._tabulated_set

    def refresh(self) -> None:
        """Rebuild the dense arrays if tabulation grew since the last build."""
        if self._dirty:
            self._rebuild_dense()
            self._dirty = False

    # ------------------------------------------------------------------
    # Persistence (see repro.core.table_store)
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[List[object], np.ndarray, np.ndarray]:
        """``(states, tabulated, pairs)`` — everything needed to restore.

        ``states`` are the codec's interned prototypes in code order,
        ``tabulated`` the tabulation order, and ``pairs`` the productive
        transitions as an ``(P, 4)`` array of ``(x, y, a, b)`` rows *in
        insertion order* — dict order is insertion order, and replaying it
        reproduces the row/column list ordering (and therefore the event
        sampler's inverse-CDF layout) exactly.
        """
        codec = self.codec
        states = [codec.prototype(code) for code in range(codec.size)]
        tabulated = np.asarray(self._tabulated, dtype=np.int64)
        pairs = np.array(
            [
                [x, y, a, b]
                for (x, y), (a, b) in self.successors.items()
            ],
            dtype=np.int64,
        ).reshape(-1, 4)
        return states, tabulated, pairs

    @classmethod
    def from_snapshot(
        cls,
        protocol: PopulationProtocol,
        states: Sequence[object],
        tabulated: np.ndarray,
        pairs: np.ndarray,
        max_states: int = DEFAULT_MAX_STATES,
    ) -> "GroupTransitionModel":
        """Rebuild a model from :meth:`snapshot` output without evaluating
        a single transition (the point of persisting it)."""
        model = cls(protocol, max_states=max_states)
        for code, state in enumerate(states):
            if model.codec.encode(state) != code:
                raise CodecError(
                    "snapshot states did not intern to their own codes"
                )
        model._tabulated = [int(code) for code in tabulated]
        model._tabulated_set = set(model._tabulated)
        for x, y, a, b in np.asarray(pairs, dtype=np.int64).tolist():
            model.successors[(x, y)] = (a, b)
            model.row_lists.setdefault(x, []).append(y)
            model.col_lists.setdefault(y, []).append(x)
        model._dirty = True
        model.refresh()
        return model

    def _rebuild_dense(self) -> None:
        size = self.codec.size
        self.diag = np.zeros(size, dtype=np.int64)
        self.row_arrays: List[Optional[np.ndarray]] = [None] * size
        self.row_diag_pos: List[int] = [-1] * size
        self.col_arrays: List[Optional[np.ndarray]] = [None] * size
        for x, responders in self.row_lists.items():
            self.row_arrays[x] = np.array(responders, dtype=np.int64)
            if x in responders:
                self.row_diag_pos[x] = responders.index(x)
                self.diag[x] = 1
        for y, initiators in self.col_lists.items():
            self.col_arrays[y] = np.array(initiators, dtype=np.int64)
        self.version += 1


@dataclass
class GroupRunResult:
    """Outcome of a group-count run.

    ``distinct_states`` is the number of states occupied at the end,
    ``tabulated_states`` the number of ever-occupied states whose pair rows
    were tabulated (the ``D`` in the ``O(D²)`` tabulation cost).
    """

    converged: bool
    interactions: int
    events: int
    milestones: Dict[str, int]
    distinct_states: int
    tabulated_states: int


class GroupCountSimulator:
    """Exact event-driven simulation on a state-count vector.

    Parameters
    ----------
    protocol:
        A deterministic protocol (``transition`` must not consume rng).
    configuration:
        Iterable of agent states (e.g. a
        :class:`~repro.core.configuration.Configuration`).  Exactly one of
        ``configuration`` and ``state_counts`` must be given.
    state_counts:
        Iterable of ``(state, multiplicity)`` pairs — the compact form used
        by protocols that declare a :meth:`~repro.core.protocol.
        PopulationProtocol.count_profile`, avoiding ``n`` object
        materializations at ``n = 10^6``.
    goal:
        A :class:`CountGoal`; defaults to ``protocol.count_goal(codec)``.
    model:
        A shared :class:`GroupTransitionModel`; a private one is built when
        omitted.  Sharing a model across the seeds of a cell amortizes the
        ``O(D²)`` tabulation cost.
    max_states:
        Tabulation budget for a private model; exceeding it raises
        :class:`~repro.core.errors.StateSpaceTooLarge`.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        *,
        configuration: Optional[Iterable[object]] = None,
        state_counts: Optional[Iterable[Tuple[object, int]]] = None,
        goal: Optional[CountGoal] = None,
        model: Optional[GroupTransitionModel] = None,
        codec: Optional[StateCodec] = None,
        random_state: RandomState = None,
        max_states: int = DEFAULT_MAX_STATES,
    ):
        if (configuration is None) == (state_counts is None):
            raise ConfigurationError(
                "exactly one of configuration= and state_counts= is required"
            )
        self._protocol = protocol
        self._n = protocol.n
        self._total_pairs = self._n * (self._n - 1)
        self._rng = make_rng(random_state)
        self._model = (
            model
            if model is not None
            else GroupTransitionModel(protocol, codec=codec, max_states=max_states)
        )
        self._codec = self._model.codec
        self._interactions = 0
        self._events = 0

        initial: Dict[int, int] = {}
        pairs = (
            state_counts
            if state_counts is not None
            else ((state, 1) for state in configuration)
        )
        for state, multiplicity in pairs:
            multiplicity = int(multiplicity)
            if multiplicity < 0:
                raise ConfigurationError("state multiplicities must be >= 0")
            if multiplicity:
                code = self._codec.encode(state)
                initial[code] = initial.get(code, 0) + multiplicity
        if sum(initial.values()) != self._n:
            raise ConfigurationError(
                f"initial counts sum to {sum(initial.values())}, "
                f"expected n={self._n}"
            )

        for code in initial:
            self._model.ensure_tabulated(code)
        self._model.refresh()
        self._counts = np.zeros(self._model.size, dtype=np.int64)
        for code, count in initial.items():
            self._counts[code] = count
        self._model_version = self._model.version
        self._recompute_row_sums()

        self._goal = goal if goal is not None else protocol.count_goal(self._codec)
        if self._goal is not None:
            for code, count in initial.items():
                self._goal.on_count(self._codec.prototype(code), count)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def codec(self) -> StateCodec:
        return self._codec

    @property
    def model(self) -> GroupTransitionModel:
        return self._model

    @property
    def goal(self) -> Optional[CountGoal]:
        return self._goal

    @property
    def interactions(self) -> int:
        return self._interactions

    @property
    def events(self) -> int:
        return self._events

    @property
    def tabulated_states(self) -> int:
        """Number of ever-occupied states tabulated in the attached model."""
        return self._model.tabulated_states

    def state_counts(self) -> Dict[int, int]:
        """Mapping from state code to its current (positive) count."""
        codes = np.nonzero(self._counts)[0]
        return {int(code): int(self._counts[code]) for code in codes}

    def count_vector(self) -> np.ndarray:
        """Copy of the full count vector (indexed by state code)."""
        return self._counts.copy()

    def is_done(self) -> bool:
        return self._goal is not None and self._goal.done()

    # ------------------------------------------------------------------
    # Count-dependent caches
    # ------------------------------------------------------------------
    def _sync_model(self) -> None:
        """Re-grow count arrays after the shared model tabulated new states."""
        self._model.refresh()
        if self._model_version == self._model.version:
            return
        counts = np.zeros(self._model.size, dtype=np.int64)
        counts[: self._counts.shape[0]] = self._counts
        self._counts = counts
        self._model_version = self._model.version
        self._recompute_row_sums()

    def _recompute_row_sums(self) -> None:
        """Recompute ``S[i] = Σ_{j ∈ row(i)} c[j]`` from scratch."""
        counts = self._counts
        self._row_sums = np.zeros(counts.shape[0], dtype=np.int64)
        for x, row in enumerate(self._model.row_arrays):
            if row is not None:
                self._row_sums[x] = int(counts[row].sum())

    # ------------------------------------------------------------------
    # Weights and sampling
    # ------------------------------------------------------------------
    def _row_weights(self) -> Tuple[np.ndarray, int]:
        """Per-initiator-row productive weights and their total ``W``."""
        counts = self._counts
        row_weights = counts * (self._row_sums - self._model.diag)
        total = int(row_weights.sum())
        if total > self._total_pairs:
            raise SimulationLimitExceeded(
                f"group-count weights exceed the number of ordered pairs "
                f"({total} > {self._total_pairs}); tabulation is inconsistent"
            )
        return row_weights, total

    def _sample_pair(self, row_weights: np.ndarray, total: int) -> Tuple[int, int]:
        """Draw a productive ordered state pair exactly (integer inverse CDF)."""
        u = int(self._rng.integers(total))
        cumulative = np.cumsum(row_weights)
        i = int(np.searchsorted(cumulative, u, side="right"))
        residual = u - (int(cumulative[i - 1]) if i else 0)
        count_i = int(self._counts[i])
        row = self._model.row_arrays[i]
        responder_weights = self._counts[row]
        diag_pos = self._model.row_diag_pos[i]
        if diag_pos >= 0:
            responder_weights = responder_weights.copy()
            responder_weights[diag_pos] -= 1
        # Pair (i, j) owns the residual slice [c_i·cum_before, c_i·cum_after),
        # so integer floor division recovers the responder index exactly.
        inner = np.searchsorted(
            np.cumsum(responder_weights), residual // count_i, side="right"
        )
        return i, int(row[int(inner)])

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _event_deltas(self, i: int, j: int) -> Dict[int, int]:
        a, b = self._model.successors[(i, j)]
        deltas: Dict[int, int] = {}
        for code, delta in ((i, -1), (j, -1), (a, 1), (b, 1)):
            deltas[code] = deltas.get(code, 0) + delta
        return {code: delta for code, delta in deltas.items() if delta}

    def _apply_deltas(self, deltas: Dict[int, int], repeat: int = 1) -> None:
        counts = self._counts
        goal = self._goal
        tabulated_new = False
        for code, delta in deltas.items():
            change = delta * repeat
            before = int(counts[code])
            after = before + change
            if after < 0:  # pragma: no cover - internal invariant
                raise ConfigurationError(
                    f"state {code} count would become negative ({after})"
                )
            counts[code] = after
            if before == 0 and after > 0 and not self._model.is_tabulated(code):
                tabulated_new |= self._model.ensure_tabulated(code)
            if goal is not None:
                goal.on_count(self._codec.prototype(code), change)
        if tabulated_new:
            self._sync_model()
        else:
            row_sums = self._row_sums
            col_arrays = self._model.col_arrays
            for code, delta in deltas.items():
                column = col_arrays[code]
                if column is not None:
                    row_sums[column] += delta * repeat

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> Optional[Tuple[int, int]]:
        """Advance one productive event (never batching).

        Returns the applied ordered state pair ``(i, j)``, or ``None`` on a
        dead configuration.  Mainly for tests and interactive inspection;
        :meth:`run` is the fast path.
        """
        self._sync_model()
        row_weights, total = self._row_weights()
        if total == 0:
            return None
        probability = total / self._total_pairs
        waiting = 1 if probability >= 1.0 else int(self._rng.geometric(probability))
        self._interactions += waiting
        i, j = self._sample_pair(row_weights, total)
        self._apply_deltas(self._event_deltas(i, j))
        self._events += 1
        return i, j

    def run(
        self,
        max_interactions: int,
        milestones: Optional[Dict[str, int]] = None,
        max_events: Optional[int] = None,
    ) -> GroupRunResult:
        """Run until the goal, a dead configuration, or the budget.

        Parameters
        ----------
        max_interactions:
            Interaction budget.  Like the hand-derived aggregate engine, a
            waiting time overshooting the budget clamps ``interactions`` to
            the budget without applying the event.
        milestones:
            Mapping from milestone name to a :class:`CountGoal` measure
            threshold; the result records the exact interaction count at
            which the measure first reached each threshold (requires a goal).
        max_events:
            Optional cap on productive events — used by throughput
            benchmarks of protocols whose full state space would exceed
            the tabulation budget.
        """
        goal = self._goal
        if milestones and goal is None:
            raise ConfigurationError(
                "milestones need a CountGoal (protocol.count_goal returned None)"
            )
        reached: Dict[str, int] = {}
        pending: List[Tuple[int, str]] = sorted(
            (int(threshold), name) for name, threshold in (milestones or {}).items()
        )
        budget_end = self._interactions + max_interactions
        events_end = None if max_events is None else self._events + max_events

        def record_crossings() -> None:
            while pending and goal.measure() >= pending[0][0]:
                reached[pending.pop(0)[1]] = self._interactions

        if pending:
            record_crossings()
        while not self.is_done() and self._interactions < budget_end:
            if events_end is not None and self._events >= events_end:
                break
            self._sync_model()
            row_weights, total = self._row_weights()
            if total == 0:
                break
            if self._run_batch(
                row_weights, total, budget_end, events_end, pending, reached
            ):
                continue
            probability = total / self._total_pairs
            waiting = (
                1 if probability >= 1.0 else int(self._rng.geometric(probability))
            )
            if self._interactions + waiting > budget_end:
                self._interactions = budget_end
                break
            self._interactions += waiting
            i, j = self._sample_pair(row_weights, total)
            self._apply_deltas(self._event_deltas(i, j))
            self._events += 1
            if pending:
                record_crossings()
        return GroupRunResult(
            converged=self.is_done(),
            interactions=self._interactions,
            events=self._events,
            milestones=reached,
            distinct_states=int(np.count_nonzero(self._counts)),
            tabulated_states=self._model.tabulated_states,
        )

    # ------------------------------------------------------------------
    # Single-productive-pair batching
    # ------------------------------------------------------------------
    def _run_batch(
        self,
        row_weights: np.ndarray,
        total: int,
        budget_end: int,
        events_end: Optional[int],
        pending: List[Tuple[int, str]],
        reached: Dict[str, int],
    ) -> bool:
        """Batch a run of events while a single productive pair is active.

        Eligibility: exactly one ordered pair ``(i, j)`` has positive weight
        and every state whose count the event changes is touched by no
        productive pair other than ``(i, j)`` — then no other pair can gain
        weight mid-batch and the whole stretch shares one weight recurrence.
        Returns whether the batch path handled this loop iteration.
        """
        model = self._model
        positive_rows = np.nonzero(row_weights)[0]
        if positive_rows.shape[0] != 1:
            return False
        i = int(positive_rows[0])
        row = model.row_arrays[i]
        responder_weights = self._counts[row].copy()
        diag_pos = model.row_diag_pos[i]
        if diag_pos >= 0:
            responder_weights[diag_pos] -= 1
        positive_responders = np.nonzero(responder_weights)[0]
        if positive_responders.shape[0] != 1:
            return False
        j = int(row[int(positive_responders[0])])
        a, b = model.successors[(i, j)]
        if model.ensure_tabulated(a) | model.ensure_tabulated(b):
            # Tabulating the successors may have revealed new productive
            # pairs; re-sync and let the caller re-derive the weights.
            self._sync_model()
            return False
        deltas = self._event_deltas(i, j)
        for code in deltas:
            for responder in model.row_lists.get(code, ()):
                if (code, responder) != (i, j):
                    return False
            for initiator in model.col_lists.get(code, ()):
                if (initiator, code) != (i, j):
                    return False

        # Maximal batch length: counts must stay non-negative …
        length = None
        for code, delta in deltas.items():
            if delta < 0:
                bound = int(self._counts[code]) // (-delta)
                length = bound if length is None else min(length, bound)
        if length is None or length == 0:  # pragma: no cover - defensive
            return False
        if events_end is not None:
            length = min(length, events_end - self._events)

        # … the goal must not complete strictly inside the batch …
        goal = self._goal
        measure_delta = 0
        measure_before = 0
        if goal is not None:
            measure_before = goal.measure()
            for code, delta in deltas.items():
                goal.on_count(self._codec.prototype(code), delta)
            measure_delta = goal.measure() - measure_before
            for code, delta in deltas.items():
                goal.on_count(self._codec.prototype(code), -delta)
            if measure_delta > 0:
                to_target = goal.target() - measure_before
                if to_target > 0:
                    length = min(length, ceil(to_target / measure_delta))
            elif measure_before == goal.target():
                # done() may flip on any event without the measure moving;
                # fall back to event-by-event stepping.
                length = 1

        # … and the pair weight must stay positive along the whole stretch.
        steps = np.arange(length, dtype=np.int64)
        count_i = int(self._counts[i]) + deltas.get(i, 0) * steps
        if i == j:
            weights = count_i * (count_i - 1)
        else:
            count_j = int(self._counts[j]) + deltas.get(j, 0) * steps
            weights = count_i * count_j
        exhausted = np.nonzero(weights <= 0)[0]
        if exhausted.shape[0]:
            length = int(exhausted[0])
            weights = weights[:length]
        if length == 0:  # pragma: no cover - W > 0 guarantees length >= 1
            return False

        probabilities = weights / self._total_pairs
        waits = self._rng.geometric(probabilities)
        cumulative = np.cumsum(waits)
        remaining = budget_end - self._interactions
        applied = int(np.searchsorted(cumulative, remaining, side="right"))
        clamped = applied < length

        if pending and measure_delta > 0 and applied:
            horizon = measure_before + measure_delta * applied
            while pending and pending[0][0] <= horizon:
                threshold, name = pending.pop(0)
                events_needed = max(
                    1, ceil((threshold - measure_before) / measure_delta)
                )
                reached[name] = self._interactions + int(
                    cumulative[events_needed - 1]
                )
        if applied:
            self._apply_deltas(deltas, repeat=applied)
            self._events += applied
            self._interactions += int(cumulative[applied - 1])
        if clamped:
            self._interactions = budget_end
        return True
