"""The population protocol abstraction.

A population protocol is defined by a state space, a transition function on
ordered pairs of states, and an output function.  The classes in this module
capture exactly that, plus the two convergence notions used by the paper:

* a configuration is **valid** when the protocol's goal is met (for ranking:
  the ranks form a permutation of ``{1, …, n}``), and
* a protocol is **silent** when, eventually, no agent changes its state in
  any interaction.

Transition functions mutate the two participating
:class:`~repro.core.state.AgentState` objects in place and return a
:class:`TransitionResult` describing what happened — this avoids per-step
allocations in the simulator's hot loop while still exposing enough
information for metrics (e.g. counting resets or rank assignments).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Generic, Optional, Sequence, Tuple, TypeVar

import numpy as np

from .configuration import Configuration
from .errors import ProtocolError

__all__ = ["PopulationProtocol", "TransitionResult", "RankingProtocol"]

S = TypeVar("S")


@dataclass(slots=True)
class TransitionResult:
    """What happened during a single interaction.

    Attributes
    ----------
    changed:
        Whether either agent's state changed.  Used for silence detection and
        by the no-op accounting of the aggregate engines' validation tests.
    rank_assigned:
        A rank that was newly assigned during this interaction, if any.
    reset_triggered:
        Whether the interaction triggered a reset (self-stabilizing protocol).
    label:
        Optional free-form tag for tracing (e.g. ``"phase_bump"``).
    """

    changed: bool = False
    rank_assigned: Optional[int] = None
    reset_triggered: bool = False
    label: Optional[str] = None


#: Shared immutable instance for the overwhelmingly common no-op case.
NOOP = TransitionResult(changed=False)


class PopulationProtocol(abc.ABC, Generic[S]):
    """Abstract base class for population protocols.

    Subclasses implement :meth:`initial_state`, :meth:`transition` and
    :meth:`has_converged`.  The population size ``n`` is an explicit protocol
    parameter: the paper (citing Cai et al.) shows exact knowledge of ``n``
    is necessary for self-stabilizing ranking, and the non-self-stabilizing
    protocol uses it to compute the phase schedule.
    """

    #: Human-readable protocol name used in experiment records.
    name: str = "population-protocol"

    def __init__(self, n: int):
        if n < 2:
            raise ProtocolError(f"population size must be at least 2, got {n}")
        self._n = int(n)

    @property
    def n(self) -> int:
        """The population size this protocol instance was built for."""
        return self._n

    # ------------------------------------------------------------------
    # Mandatory protocol definition
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_state(self) -> S:
        """Return the designated initial state of a fresh agent."""

    @abc.abstractmethod
    def transition(
        self, initiator: S, responder: S, rng: np.random.Generator
    ) -> TransitionResult:
        """Apply one interaction, mutating ``initiator`` and ``responder``.

        The pair is ordered, matching the model in Section III: in each time
        step an ordered pair of distinct agents is chosen uniformly at random.
        Protocols whose rules are symmetric simply ignore the order.
        """

    @abc.abstractmethod
    def has_converged(self, configuration: Configuration[S]) -> bool:
        """Whether ``configuration`` satisfies the protocol's goal."""

    # ------------------------------------------------------------------
    # Optional hooks
    # ------------------------------------------------------------------
    def initial_configuration(self) -> Configuration[S]:
        """Return the designated initial configuration (all agents fresh)."""
        return Configuration([self.initial_state() for _ in range(self._n)])

    def is_silent(self, configuration: Configuration[S]) -> bool:
        """Whether no interaction can change any agent state.

        The default implementation conservatively equates silence with
        convergence; silent protocols for which convergence already implies
        silence (as proven for the paper's protocols) need not override this.
        """
        return self.has_converged(configuration)

    def output(self, state: S) -> object:
        """The output mapped from an agent state (default: the state itself)."""
        return state

    def describe(self) -> dict:
        """Protocol metadata recorded alongside experiment results."""
        return {"name": self.name, "n": self._n}

    def state_space_size(self) -> Optional[int]:
        """Number of distinct states the protocol can use, if known.

        Protocols reproducing the paper's state-space accounting override
        this; returning ``None`` means "not tracked".
        """
        return None

    def consumes_randomness(self) -> Optional[bool]:
        """Whether :meth:`transition` ever draws from the rng.

        The array engine and the backend registry use this declaration for
        capability negotiation: ``False`` promises that every transition is
        a pure function of the two states (so state pairs can be tabulated
        and the protocol runs on the array engine's warm path), ``True``
        declares that some transitions draw randomness (the engine goes
        straight to its object fallback instead of discovering the fact on
        the first tabulation attempt), and ``None`` (the default) leaves
        the engine to probe dynamically.  A wrong ``False`` is harmless —
        the probing rng still raises and the engine demotes mid-run — but
        costs a failed tabulation; a wrong ``True`` only forfeits speed.
        """
        return None

    def codec_fields(self) -> Tuple[str, ...]:
        """Field names that fully determine this protocol's agent states.

        Used with :meth:`StateCodec.field_columns
        <repro.core.codec.StateCodec.field_columns>` to project interned
        states into per-field integer columns (SoA kernels, capability
        matrices, cross-engine equivalence tests).  An empty tuple (the
        default) means the projection is undeclared.
        """
        return ()

    def seed_states(self) -> Sequence[S]:
        """Representative states to seed reachable-space enumeration.

        The array engine closes the *initial configuration's* states under
        the transition function when compiling dense tables; protocols
        whose full concrete state space is small can return it here so the
        compiled tables also cover configurations outside that closure
        (adversarial starts, fault-injected rankings).  The default empty
        sequence keeps the configuration-only behaviour.
        """
        return ()

    def count_goal(self, codec):
        """Convergence observable over state counts for the group engine.

        Protocols that can express their goal as a function of *how many*
        agents occupy each state (rather than which agent occupies it)
        return a :class:`~repro.core.group_engine.CountGoal` built over
        ``codec``; the group-count engine then simulates the exact lumped
        count process instead of individual agents.  Returning ``None``
        (the default) opts the protocol out of the group engine.
        """
        return None

    def count_profile(self):
        """Initial configuration as ``(state, multiplicity)`` pairs, if known.

        The group engine only needs counts, so protocols whose designated
        initial configuration collapses to a handful of distinct states can
        return them here and skip materializing ``n`` state objects (the
        difference between milliseconds and seconds at ``n = 10^6``).
        ``None`` (the default) falls back to building the configuration.
        """
        return None

    def state_converged(self, state: S) -> Optional[bool]:
        """Per-state necessary condition for configuration convergence.

        Batched engines screen whole replica populations with one
        vectorized pass: if this returns ``False`` for *any* state in a
        configuration, the configuration cannot satisfy
        :meth:`has_converged`, so the (comparatively expensive) exact
        check is skipped.  ``True`` means the state is *compatible* with
        convergence — the exact check still runs, because per-state
        screens cannot express global conditions like "the ranks form a
        permutation".  ``None`` (the default) declares no screen; the
        engine then always runs the exact check.

        The contract is one-sided: a screen may pass configurations that
        are not converged, but it must never reject one that is.
        """
        return None

    def vectorized_kernel(self, codec):
        """Optional struct-of-arrays fast path for the array engine.

        Protocols that understand their own hot path may return a
        :class:`~repro.core.soa.VectorizedKernel` built over ``codec`` (a
        :class:`~repro.core.codec.StateCodec`); the array engine then
        consumes chunk prefixes through it instead of the scalar walk,
        falling back to the walk at the first pair the kernel declines.
        The kernel must be *exact* — bit-identical to the reference
        simulator for the pairs it consumes (see :mod:`repro.core.soa`).
        Returning ``None`` (the default) keeps the generic paths.
        """
        return None


class RankingProtocol(PopulationProtocol[S]):
    """Base class for ranking protocols (the paper's problem).

    Convergence is membership in ``C_L``: every agent holds a rank and the
    ranks are a permutation of ``{1, …, n}``.  Subclasses may *extend*
    convergence with additional conditions (e.g. the self-stabilizing
    protocol also requires that no reset is in flight) by overriding
    :meth:`has_converged` and calling ``super()``.
    """

    name = "ranking"

    def has_converged(self, configuration: Configuration[S]) -> bool:
        return configuration.is_valid_ranking()

    def output(self, state: S):
        """Ranking output: the agent's rank (``None`` while unranked)."""
        return getattr(state, "rank", None)

    def state_converged(self, state: S) -> Optional[bool]:
        """A valid ranking needs every agent ranked; unranked ⇒ not converged."""
        return getattr(state, "rank", None) is not None

    def leader_output(self, state: S) -> Optional[bool]:
        """Leader-election output derived from ranking (rank 1 = leader)."""
        rank = getattr(state, "rank", None)
        if rank is None:
            return None
        return rank == 1

    def count_goal(self, codec):
        """Ranking goal over counts: ranks held form a permutation of 1..n."""
        from .group_engine import RankingCountGoal

        return RankingCountGoal(self._n)


def make_probe(name: str, function: Callable[[Configuration], float]):
    """Small helper pairing a metric name with its probe function."""
    return (name, function)
