"""Core population-protocol simulation model.

This subpackage contains everything that is *not* specific to the paper's
ranking protocols: agent states, configurations, the protocol abstraction,
the uniform random scheduler, the reference simulator, metric collection and
the exact event-driven simulation base class.
"""

from .aggregate import AggregateResult, EventDrivenSimulator
from .configuration import Configuration
from .errors import (
    AnalysisError,
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
    SimulationLimitExceeded,
)
from .events import TraceEvent, TraceLog
from .metrics import MetricsCollector, TimeSeries, standard_ranking_probes
from .protocol import PopulationProtocol, RankingProtocol, TransitionResult
from .rng import make_rng, spawn_rngs, spawn_seeds
from .scheduler import UniformPairScheduler
from .simulation import SimulationResult, Simulator
from .state import AgentState, Role, classify_role

__all__ = [
    "AgentState",
    "AggregateResult",
    "AnalysisError",
    "Configuration",
    "ConfigurationError",
    "EventDrivenSimulator",
    "ExperimentError",
    "MetricsCollector",
    "PopulationProtocol",
    "ProtocolError",
    "RankingProtocol",
    "ReproError",
    "Role",
    "SimulationLimitExceeded",
    "SimulationResult",
    "Simulator",
    "TimeSeries",
    "TraceEvent",
    "TraceLog",
    "TransitionResult",
    "UniformPairScheduler",
    "classify_role",
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "standard_ranking_probes",
]
