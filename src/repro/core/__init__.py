"""Core population-protocol simulation model.

This subpackage contains everything that is *not* specific to the paper's
ranking protocols: agent states, configurations, the protocol abstraction,
the uniform random scheduler, the reference simulator, metric collection and
the exact event-driven simulation base class.
"""

from .aggregate import AggregateResult, EventDrivenSimulator
from .array_engine import ArraySimulator, EngineCache, make_simulator
from .codec import DenseTransitionTables, StateCodec, compile_dense_tables
from .configuration import Configuration
from .errors import (
    AnalysisError,
    CodecError,
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    RandomnessConsumed,
    ReproError,
    SimulationLimitExceeded,
    StateSpaceTooLarge,
)
from .events import TraceEvent, TraceLog
from .metrics import MetricsCollector, TimeSeries, standard_ranking_probes
from .protocol import PopulationProtocol, RankingProtocol, TransitionResult
from .rng import make_rng, spawn_rngs, spawn_seeds
from .scheduler import UniformPairScheduler
from .simulation import SimulationResult, Simulator
from .soa import ChunkOutcome, ColumnStore, VectorizedKernel, occurrence_index
from .state import AgentState, Role, classify_role

__all__ = [
    "AgentState",
    "AggregateResult",
    "AnalysisError",
    "ArraySimulator",
    "ChunkOutcome",
    "CodecError",
    "ColumnStore",
    "Configuration",
    "ConfigurationError",
    "DenseTransitionTables",
    "EngineCache",
    "EventDrivenSimulator",
    "ExperimentError",
    "MetricsCollector",
    "PopulationProtocol",
    "ProtocolError",
    "RandomnessConsumed",
    "RankingProtocol",
    "ReproError",
    "Role",
    "SimulationLimitExceeded",
    "SimulationResult",
    "Simulator",
    "StateCodec",
    "StateSpaceTooLarge",
    "TimeSeries",
    "TraceEvent",
    "TraceLog",
    "TransitionResult",
    "UniformPairScheduler",
    "VectorizedKernel",
    "classify_role",
    "occurrence_index",
    "compile_dense_tables",
    "make_rng",
    "make_simulator",
    "spawn_rngs",
    "spawn_seeds",
    "standard_ranking_probes",
]
