"""Core population-protocol simulation model.

This subpackage contains everything that is *not* specific to the paper's
ranking protocols: agent states, configurations, the protocol abstraction,
the uniform random scheduler, the reference simulator, metric collection and
the exact event-driven simulation base class.
"""

from .aggregate import AggregateResult, EventDrivenSimulator
from .array_engine import ArraySimulator, EngineCache, make_simulator
from .backends import (
    Backend,
    BackendCapability,
    backend_names,
    capability_matrix,
    engine_choices,
    get_backend,
    register_backend,
    resolve_backend,
)
from .codec import DenseTransitionTables, StateCodec, compile_dense_tables
from .group_engine import (
    CountGoal,
    GroupCountSimulator,
    GroupRunResult,
    GroupTransitionModel,
    RankingCountGoal,
)
from .probe_table import ProbeClassTable
from .configuration import Configuration
from .errors import (
    AnalysisError,
    CodecError,
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    RandomnessConsumed,
    ReproError,
    SimulationLimitExceeded,
    StateSpaceTooLarge,
)
from .events import TraceEvent, TraceLog
from .metrics import MetricsCollector, TimeSeries, standard_ranking_probes
from .protocol import PopulationProtocol, RankingProtocol, TransitionResult
from .rng import make_rng, spawn_rngs, spawn_seeds
from .scheduler import UniformPairScheduler
from .simulation import SimulationResult, Simulator
from .soa import ChunkOutcome, ColumnStore, VectorizedKernel, occurrence_index
from .state import AgentState, Role, classify_role

__all__ = [
    "AgentState",
    "AggregateResult",
    "AnalysisError",
    "ArraySimulator",
    "Backend",
    "BackendCapability",
    "ChunkOutcome",
    "CodecError",
    "ColumnStore",
    "Configuration",
    "ConfigurationError",
    "CountGoal",
    "DenseTransitionTables",
    "EngineCache",
    "EventDrivenSimulator",
    "ExperimentError",
    "GroupCountSimulator",
    "GroupRunResult",
    "GroupTransitionModel",
    "MetricsCollector",
    "PopulationProtocol",
    "ProbeClassTable",
    "ProtocolError",
    "RandomnessConsumed",
    "RankingCountGoal",
    "RankingProtocol",
    "ReproError",
    "Role",
    "SimulationLimitExceeded",
    "SimulationResult",
    "Simulator",
    "StateCodec",
    "StateSpaceTooLarge",
    "TimeSeries",
    "TraceEvent",
    "TraceLog",
    "TransitionResult",
    "UniformPairScheduler",
    "VectorizedKernel",
    "backend_names",
    "capability_matrix",
    "classify_role",
    "engine_choices",
    "get_backend",
    "occurrence_index",
    "register_backend",
    "resolve_backend",
    "compile_dense_tables",
    "make_rng",
    "make_simulator",
    "spawn_rngs",
    "spawn_seeds",
    "standard_ranking_probes",
]
