"""State codecs: dense integer codes for protocol state spaces.

The paper's protocols use only ``n + Θ(log n)`` (Theorem 1) respectively
``n + O(log² n)`` (Theorem 2) states, so an agent's state can be represented
by a small integer instead of a Python object.  :class:`StateCodec` maintains
that mapping: it interns every distinct state value it sees, hands out dense
codes ``0, 1, 2, …`` and can materialize fresh state objects back from codes.
The array engine (:mod:`repro.core.array_engine`) stores a population as a
numpy array of codes and simulates interactions with table lookups instead of
Python-level transition calls.

Two compilation strategies are built on top of the codec:

* :func:`enumerate_reachable_states` computes the closure of a set of start
  codes under the protocol's transition function by evaluating every ordered
  pair of known states.  For protocols with a genuinely small concrete state
  space (the one-way epidemic has 4) this terminates quickly and
  :func:`compile_dense_tables` materializes complete ``(S × S)`` numpy lookup
  tables.  The budget ``max_states`` bounds the attempt; protocols whose
  concrete space is large — ``StableRanking``'s counters span
  ``Θ(log² n)`` values with large constants — raise
  :class:`~repro.core.errors.StateSpaceTooLarge` and are handled lazily by
  the engine instead.
* :func:`evaluate_pair` tabulates a single ordered state pair on scratch
  copies.  It drives both the eager enumeration above and the engine's lazy
  kernel path, and passes a *raising* rng probe to the transition: a protocol
  that consumes randomness inside ``transition`` (the GS leader-election
  substrate draws random tags) cannot be tabulated at all, and the resulting
  :class:`~repro.core.errors.RandomnessConsumed` tells the engine to fall
  back to the object path.

Tabulation calls ``protocol.transition`` on scratch states, so protocol-level
*diagnostic* counters (e.g. ``PropagateReset.triggered_count``) include the
tabulation probes.  The simulation-level counters reported in
``SimulationResult`` are derived from the tables and are unaffected.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .errors import CodecError, RandomnessConsumed, StateSpaceTooLarge
from .protocol import PopulationProtocol

__all__ = [
    "StateCodec",
    "DenseTransitionTables",
    "PairOutcome",
    "enumerate_reachable_states",
    "compile_dense_tables",
    "evaluate_pair",
]


class _RaisingRng:
    """Stand-in generator that flags any attempt to consume randomness.

    Passed to ``protocol.transition`` during tabulation.  Deterministic
    transitions never touch the generator; any attribute access (``integers``,
    ``random``, …) aborts the tabulation with :class:`RandomnessConsumed`.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        raise RandomnessConsumed(
            f"transition consumed randomness (accessed rng.{name}); "
            "state pairs of this protocol cannot be cached in a table"
        )


#: Shared probe instance (stateless).
RAISING_RNG = _RaisingRng()


def _state_key(state: object) -> tuple:
    """Hashable identity of a state value.

    States either expose ``as_tuple()`` (the reference
    :class:`~repro.core.state.AgentState`) or are dataclasses (e.g.
    ``EpidemicState``); the key includes the concrete type so two state
    classes with coincidentally equal field tuples never collide.
    """
    as_tuple = getattr(state, "as_tuple", None)
    if as_tuple is not None:
        return (type(state), as_tuple())
    if dataclasses.is_dataclass(state):
        return (
            type(state),
            tuple(getattr(state, f.name) for f in dataclasses.fields(state)),
        )
    raise CodecError(
        f"cannot derive a state key for {type(state).__name__}: states must "
        "provide as_tuple() or be dataclasses"
    )


def _copy_state(state):
    """Independent copy of a state (``copy()`` method, or dataclass replace)."""
    copier = getattr(state, "copy", None)
    if copier is not None:
        return copier()
    if dataclasses.is_dataclass(state):
        return dataclasses.replace(state)
    raise CodecError(
        f"cannot copy state of type {type(state).__name__}: states must "
        "provide copy() or be dataclasses"
    )


class StateCodec:
    """Bidirectional mapping between state objects and dense integer codes.

    Codes are assigned in first-seen order, starting at 0.  The codec keeps a
    *prototype* object per code: an immutable-by-convention snapshot used for
    read-only predicates (convergence checks share prototypes across agents)
    and as the template for :meth:`materialize`.
    """

    __slots__ = ("_codes", "_prototypes")

    def __init__(self):
        self._codes: Dict[tuple, int] = {}
        self._prototypes: List[object] = []

    def __len__(self) -> int:
        return len(self._prototypes)

    @property
    def size(self) -> int:
        """Number of distinct states interned so far."""
        return len(self._prototypes)

    def encode(self, state: object) -> int:
        """Return the code of ``state``, interning it if unseen.

        The codec stores a private copy, so callers may keep mutating the
        passed object.
        """
        key = _state_key(state)
        code = self._codes.get(key)
        if code is None:
            code = len(self._prototypes)
            self._codes[key] = code
            self._prototypes.append(_copy_state(state))
        return code

    def encode_many(self, states: Iterable[object]) -> np.ndarray:
        """Encode an iterable of states into an int64 code array."""
        return np.fromiter(
            (self.encode(state) for state in states), dtype=np.int64
        )

    def prototype(self, code: int) -> object:
        """The shared prototype for ``code`` — treat as read-only."""
        return self._prototypes[code]

    def materialize(self, code: int) -> object:
        """A fresh, independently mutable state object for ``code``."""
        return _copy_state(self._prototypes[code])

    def materialize_many(self, codes: Sequence[int]) -> List[object]:
        """Fresh state objects for a sequence of codes (e.g. a population)."""
        prototypes = self._prototypes
        return [_copy_state(prototypes[code]) for code in codes]

    def prototype_view(self, codes: Sequence[int]) -> List[object]:
        """Shared prototypes for a sequence of codes (read-only views).

        Suitable for predicates that only *read* agent state (convergence
        checks, metric probes); the same prototype object may appear multiple
        times in the returned list.
        """
        prototypes = self._prototypes
        return [prototypes[code] for code in codes]

    # ------------------------------------------------------------------
    # Struct-of-arrays projection (see repro.core.soa)
    # ------------------------------------------------------------------
    def field_columns(
        self,
        fields: Sequence[str],
        start: int = 0,
        undefined: int = -1,
    ) -> Dict[str, np.ndarray]:
        """Project the interned states into per-field integer columns.

        For every ``field`` name, returns an int64 array of length
        ``size - start`` whose entry ``i`` is ``getattr(prototype(start + i),
        field)`` with ``None`` (the paper's ``⊥``) mapped to ``undefined``
        and booleans mapped to 0/1.  ``start`` lets vectorized kernels
        extend previously projected columns incrementally as the codec
        interns new states mid-run.

        Raises :class:`CodecError` if some interned state lacks one of the
        requested fields — a kernel asking for columns of the wrong state
        type must fail loudly, not read garbage.
        """
        prototypes = self._prototypes[start:]
        columns = {
            field: np.empty(len(prototypes), dtype=np.int64) for field in fields
        }
        for field, column in columns.items():
            for index, prototype in enumerate(prototypes):
                try:
                    value = getattr(prototype, field)
                except AttributeError:
                    raise CodecError(
                        f"state type {type(prototype).__name__} has no field "
                        f"{field!r}; cannot project it into a column"
                    ) from None
                column[index] = undefined if value is None else int(value)
        return columns

    def variant_code(self, code: int, **updates) -> int:
        """The code of ``prototype(code)`` with some fields replaced.

        The inverse of :meth:`field_columns` for single states: vectorized
        kernels evolve per-field columns (a coin toggled, a counter
        decremented) and use this to re-enter the coded world, interning the
        variant if it was never seen before.  Pass ``None`` to reset a field
        to the undefined value ``⊥``.
        """
        state = _copy_state(self._prototypes[code])
        for field, value in updates.items():
            setattr(state, field, value)
        return self.encode(state)


@dataclass(frozen=True)
class PairOutcome:
    """Tabulated result of one ordered interaction ``(a, b) → (a', b')``."""

    next_initiator: int
    next_responder: int
    changed: bool
    rank_assigned: int  # 0 when no rank was assigned
    reset_triggered: bool


def evaluate_pair(
    protocol: PopulationProtocol, codec: StateCodec, a: int, b: int
) -> PairOutcome:
    """Tabulate the transition for the ordered state pair ``(a, b)``.

    Runs the protocol's transition on scratch copies of the two prototypes
    and interns the successor states.  Raises
    :class:`~repro.core.errors.RandomnessConsumed` if the transition touches
    the rng — such pairs must not be cached.
    """
    initiator = codec.materialize(a)
    responder = codec.materialize(b)
    result = protocol.transition(initiator, responder, RAISING_RNG)
    rank = result.rank_assigned
    return PairOutcome(
        next_initiator=codec.encode(initiator),
        next_responder=codec.encode(responder),
        changed=bool(result.changed),
        rank_assigned=0 if rank is None else int(rank),
        reset_triggered=bool(result.reset_triggered),
    )


def enumerate_reachable_states(
    protocol: PopulationProtocol,
    codec: StateCodec,
    start_codes: Iterable[int],
    max_states: int,
) -> Dict[Tuple[int, int], PairOutcome]:
    """Close ``start_codes`` under the transition function.

    Evaluates every ordered pair of known states (two distinct agents may
    hold the same state, so ``(a, a)`` pairs are included) until no new state
    appears.  The pair set of any reachable configuration is a subset of the
    pairs of individually reachable states, so this closure over-approximates
    every trajectory.

    Returns the full pair→outcome map; raises
    :class:`~repro.core.errors.StateSpaceTooLarge` when more than
    ``max_states`` states are discovered, and
    :class:`~repro.core.errors.RandomnessConsumed` for protocols whose
    transition consumes randomness.
    """
    list(start_codes)  # materialize side effects if a generator was passed
    outcomes: Dict[Tuple[int, int], PairOutcome] = {}
    while True:
        size = codec.size
        if size > max_states:
            raise StateSpaceTooLarge(
                f"{protocol.name}: state enumeration exceeded "
                f"max_states={max_states} ({size} states found)"
            )
        new_pairs = [
            (a, b)
            for a in range(size)
            for b in range(size)
            if (a, b) not in outcomes
        ]
        if not new_pairs:
            return outcomes
        for a, b in new_pairs:
            outcomes[(a, b)] = evaluate_pair(protocol, codec, a, b)
            if codec.size > max_states:
                raise StateSpaceTooLarge(
                    f"{protocol.name}: state enumeration exceeded "
                    f"max_states={max_states}"
                )


@dataclass
class DenseTransitionTables:
    """Complete ``(S × S)`` numpy lookup tables for a tabulated protocol.

    ``next_initiator[a, b]`` / ``next_responder[a, b]`` are the successor
    codes of the ordered interaction ``(a, b)``; ``changed``, ``rank``
    (0 = no rank assigned) and ``reset`` mirror
    :class:`~repro.core.protocol.TransitionResult`.
    """

    next_initiator: np.ndarray
    next_responder: np.ndarray
    changed: np.ndarray
    rank: np.ndarray
    reset: np.ndarray

    @property
    def size(self) -> int:
        """Number of states ``S`` covered by the tables."""
        return self.next_initiator.shape[0]


def compile_dense_tables(
    protocol: PopulationProtocol,
    codec: StateCodec,
    start_codes: Iterable[int],
    max_states: int = 128,
) -> DenseTransitionTables:
    """Enumerate the reachable state space and materialize dense tables.

    Intended for protocols whose concrete state space is genuinely small
    (one-way epidemics, two-state approximate-majority-style protocols, …).
    Raises :class:`StateSpaceTooLarge` / :class:`RandomnessConsumed` exactly
    like :func:`enumerate_reachable_states`; the array engine catches both
    and degrades gracefully.
    """
    outcomes = enumerate_reachable_states(protocol, codec, start_codes, max_states)
    size = codec.size
    tables = DenseTransitionTables(
        next_initiator=np.empty((size, size), dtype=np.int64),
        next_responder=np.empty((size, size), dtype=np.int64),
        changed=np.zeros((size, size), dtype=bool),
        rank=np.zeros((size, size), dtype=np.int64),
        reset=np.zeros((size, size), dtype=bool),
    )
    for (a, b), outcome in outcomes.items():
        tables.next_initiator[a, b] = outcome.next_initiator
        tables.next_responder[a, b] = outcome.next_responder
        tables.changed[a, b] = outcome.changed
        tables.rank[a, b] = outcome.rank_assigned
        tables.reset[a, b] = outcome.reset_triggered
    return tables
