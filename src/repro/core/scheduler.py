"""Interaction schedulers.

The paper uses the *uniform random scheduler*: in each discrete time step an
ordered pair of distinct agents is chosen uniformly at random from the
``n·(n-1)`` possibilities.  :class:`UniformPairScheduler` implements exactly
that.  Because sampling one pair per Python call is slow, the scheduler also
provides chunked sampling backed by numpy, which the simulator uses to
amortize the random-number generation cost over many interactions.

:class:`PairScheduler` is the seam other schedulers plug into: it owns the
buffered one-at-a-time API (``sample`` / ``pairs``) and defines the single
abstract primitive ``sample_chunk``.  ``sample()`` refills its buffer through
``sample_chunk(chunk_size)``, so any subclass automatically satisfies the
determinism contract the engines rely on — the reference simulator (buffered
singles) and the array engines (whole chunks) issue *identical* generator
calls and therefore see the same pair stream on the same seed.  The
graph-restricted scheduler lives in :mod:`repro.topologies.scheduler` and
subclasses this seam.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .errors import ProtocolError
from .rng import RandomState, make_rng

__all__ = ["PairScheduler", "UniformPairScheduler"]


class PairScheduler:
    """Base class for interaction-pair schedulers.

    Subclasses implement :meth:`sample_chunk`; the buffered single-pair API
    is provided here and is *defined* as draining chunks of ``chunk_size``
    pairs.  That definition is the bit-identity contract between engines:
    consuming the stream pair-by-pair via :meth:`sample` advances the
    underlying generator exactly as consuming it chunk-by-chunk via
    :meth:`sample_chunk` does (provided both sides use the same
    ``chunk_size``).
    """

    def __init__(
        self,
        n: int,
        random_state: RandomState = None,
        chunk_size: int = 4096,
    ):
        if n < 2:
            raise ProtocolError(f"need at least 2 agents to interact, got n={n}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self._n = n
        self._rng = make_rng(random_state)
        self._chunk_size = chunk_size
        self._buffer: np.ndarray = np.empty((0, 2), dtype=np.int64)
        self._cursor = 0

    @property
    def n(self) -> int:
        """Population size."""
        return self._n

    @property
    def rng(self) -> np.random.Generator:
        """The underlying random generator (shared with protocol transitions)."""
        return self._rng

    @property
    def chunk_size(self) -> int:
        """Pairs pre-sampled per refill (the bit-identity granularity)."""
        return self._chunk_size

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_chunk(self, count: int) -> np.ndarray:
        """Return ``count`` ordered pairs as a ``(count, 2)`` integer array.

        This is the one primitive subclasses implement.  It bypasses the
        internal buffer and is consumed directly by array-based engines.
        """
        raise NotImplementedError

    def _refill(self) -> None:
        """Refill the internal buffer with a fresh chunk of ordered pairs."""
        self._buffer = self.sample_chunk(self._chunk_size)
        self._cursor = 0

    def sample(self) -> Tuple[int, int]:
        """Return the next ordered pair ``(initiator, responder)``."""
        if self._cursor >= len(self._buffer):
            self._refill()
        pair = self._buffer[self._cursor]
        self._cursor += 1
        return int(pair[0]), int(pair[1])

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Infinite iterator over ordered pairs."""
        while True:
            yield self.sample()


class UniformPairScheduler(PairScheduler):
    """Samples ordered pairs of distinct agents uniformly at random.

    Parameters
    ----------
    n:
        Population size.
    random_state:
        Seed or generator for the underlying randomness.
    chunk_size:
        Number of pairs pre-sampled per numpy call.  Larger chunks amortize
        overhead better but delay nothing semantically: the sequence of pairs
        is identical in distribution to one-at-a-time sampling.
    """

    @property
    def total_ordered_pairs(self) -> int:
        """Number of possible ordered pairs, ``n·(n-1)``."""
        return self._n * (self._n - 1)

    def sample_chunk(self, count: int) -> np.ndarray:
        """Return ``count`` uniform ordered pairs of distinct agents."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        initiators = self._rng.integers(0, self._n, size=count)
        responders = self._rng.integers(0, self._n - 1, size=count)
        # Map the responder draw from {0, …, n-2} to {0, …, n-1} \ {initiator}
        # so each ordered pair of *distinct* agents is equally likely.
        responders = responders + (responders >= initiators)
        return np.stack([initiators, responders], axis=1)
