"""Interaction schedulers.

The paper uses the *uniform random scheduler*: in each discrete time step an
ordered pair of distinct agents is chosen uniformly at random from the
``n·(n-1)`` possibilities.  :class:`UniformPairScheduler` implements exactly
that.  Because sampling one pair per Python call is slow, the scheduler also
provides chunked sampling backed by numpy, which the simulator uses to
amortize the random-number generation cost over many interactions.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .errors import ProtocolError
from .rng import RandomState, make_rng

__all__ = ["UniformPairScheduler"]


class UniformPairScheduler:
    """Samples ordered pairs of distinct agents uniformly at random.

    Parameters
    ----------
    n:
        Population size.
    random_state:
        Seed or generator for the underlying randomness.
    chunk_size:
        Number of pairs pre-sampled per numpy call.  Larger chunks amortize
        overhead better but delay nothing semantically: the sequence of pairs
        is identical in distribution to one-at-a-time sampling.
    """

    def __init__(
        self,
        n: int,
        random_state: RandomState = None,
        chunk_size: int = 4096,
    ):
        if n < 2:
            raise ProtocolError(f"need at least 2 agents to interact, got n={n}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self._n = n
        self._rng = make_rng(random_state)
        self._chunk_size = chunk_size
        self._buffer: np.ndarray = np.empty((0, 2), dtype=np.int64)
        self._cursor = 0

    @property
    def n(self) -> int:
        """Population size."""
        return self._n

    @property
    def rng(self) -> np.random.Generator:
        """The underlying random generator (shared with protocol transitions)."""
        return self._rng

    @property
    def total_ordered_pairs(self) -> int:
        """Number of possible ordered pairs, ``n·(n-1)``."""
        return self._n * (self._n - 1)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        """Refill the internal buffer with a fresh chunk of ordered pairs."""
        size = self._chunk_size
        initiators = self._rng.integers(0, self._n, size=size)
        responders = self._rng.integers(0, self._n - 1, size=size)
        # Map the responder draw from {0, …, n-2} to {0, …, n-1} \ {initiator}
        # so each ordered pair of *distinct* agents is equally likely.
        responders = responders + (responders >= initiators)
        self._buffer = np.stack([initiators, responders], axis=1)
        self._cursor = 0

    def sample(self) -> Tuple[int, int]:
        """Return the next ordered pair ``(initiator, responder)``."""
        if self._cursor >= len(self._buffer):
            self._refill()
        pair = self._buffer[self._cursor]
        self._cursor += 1
        return int(pair[0]), int(pair[1])

    def sample_chunk(self, count: int) -> np.ndarray:
        """Return ``count`` ordered pairs as an ``(count, 2)`` integer array.

        This bypasses the internal buffer and is intended for fast array-based
        engines that consume whole chunks at once.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        initiators = self._rng.integers(0, self._n, size=count)
        responders = self._rng.integers(0, self._n - 1, size=count)
        responders = responders + (responders >= initiators)
        return np.stack([initiators, responders], axis=1)

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Infinite iterator over ordered pairs."""
        while True:
            yield self.sample()
