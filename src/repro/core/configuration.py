"""Configurations: the global state of a population.

A configuration is the vector of agent states at a point in time.  This
module provides a small container class with the validity predicates used
throughout the paper (valid ranking, legal configuration set ``C_L``) plus
convenience accessors used by metrics, experiments and tests.

The container is deliberately generic: the reference protocols use
:class:`~repro.core.state.AgentState`, while baselines may define their own
lightweight state classes.  The only requirement for the ranking-specific
helpers is that states expose a ``rank`` attribute (``None`` when unranked).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Generic, Iterable, Iterator, List, Optional, Sequence, TypeVar

from .errors import ConfigurationError
from .state import AgentState, Role, classify_role

__all__ = ["Configuration"]

S = TypeVar("S")


class Configuration(Generic[S]):
    """The joint state of all ``n`` agents.

    Parameters
    ----------
    states:
        One state object per agent.  The configuration takes ownership of the
        list; callers that need to preserve the originals should pass copies.
    """

    __slots__ = ("_states",)

    def __init__(self, states: Sequence[S]):
        states = list(states)
        if not states:
            raise ConfigurationError("a configuration needs at least one agent")
        self._states: List[S] = states

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[S]:
        return iter(self._states)

    def __getitem__(self, index: int) -> S:
        return self._states[index]

    def __setitem__(self, index: int, value: S) -> None:
        self._states[index] = value

    @property
    def states(self) -> List[S]:
        """The underlying list of agent states (mutable, shared)."""
        return self._states

    @property
    def population_size(self) -> int:
        """Number of agents ``n``."""
        return len(self._states)

    def copy(self) -> "Configuration[S]":
        """Deep-ish copy: copies states that provide a ``copy()`` method."""
        copied = [
            state.copy() if hasattr(state, "copy") else state
            for state in self._states
        ]
        return Configuration(copied)

    # ------------------------------------------------------------------
    # Ranking-specific queries (states must expose ``rank``)
    # ------------------------------------------------------------------
    def ranks(self) -> List[Optional[int]]:
        """Return the list of ranks (``None`` for unranked agents)."""
        return [getattr(state, "rank", None) for state in self._states]

    def assigned_ranks(self) -> List[int]:
        """Return only the defined ranks, in agent order."""
        return [rank for rank in self.ranks() if rank is not None]

    def ranked_count(self) -> int:
        """Number of agents currently holding a rank."""
        return sum(1 for rank in self.ranks() if rank is not None)

    def unranked_count(self) -> int:
        """Number of agents without a rank."""
        return len(self) - self.ranked_count()

    def duplicate_ranks(self) -> List[int]:
        """Return the ranks held by more than one agent (sorted)."""
        counts = Counter(self.assigned_ranks())
        return sorted(rank for rank, count in counts.items() if count > 1)

    def is_valid_ranking(self) -> bool:
        """Whether the configuration is in the legal set ``C_L``.

        ``C_L`` is the set of configurations in which the ranks form a
        permutation of ``{1, …, n}`` (Section III of the paper).
        """
        ranks = self.ranks()
        if any(rank is None for rank in ranks):
            return False
        return sorted(ranks) == list(range(1, len(self) + 1))

    def leader_index(self) -> Optional[int]:
        """Index of the agent with rank 1, or ``None`` if no such agent exists.

        The paper derives leader election from ranking by declaring the agent
        with rank 1 the leader.
        """
        for index, state in enumerate(self._states):
            if getattr(state, "rank", None) == 1:
                return index
        return None

    # ------------------------------------------------------------------
    # Role-based queries (reference AgentState only)
    # ------------------------------------------------------------------
    def role_counts(self) -> Counter:
        """Histogram of :class:`~repro.core.state.Role` values.

        Only meaningful when states are :class:`AgentState` instances.
        """
        return Counter(classify_role(state) for state in self._states)

    def agents_with_role(self, role: Role) -> List[int]:
        """Indices of agents whose classified role equals ``role``."""
        return [
            index
            for index, state in enumerate(self._states)
            if isinstance(state, AgentState) and classify_role(state) is role
        ]

    def phase_values(self) -> List[int]:
        """Phase counters of all phase agents (unordered list)."""
        return [
            state.phase
            for state in self._states
            if getattr(state, "phase", None) is not None
        ]

    def average_phase(self) -> float:
        """Average phase counter of unranked phase agents (0.0 if none).

        This is the red dashed series of the paper's Figure 2.
        """
        phases = self.phase_values()
        if not phases:
            return 0.0
        return sum(phases) / len(phases)

    # ------------------------------------------------------------------
    # Generic summarization
    # ------------------------------------------------------------------
    def count_where(self, predicate: Callable[[S], bool]) -> int:
        """Number of agents whose state satisfies ``predicate``."""
        return sum(1 for state in self._states if predicate(state))

    def summary(self) -> dict:
        """A small dictionary summary used by traces and debug output."""
        info = {
            "n": len(self),
            "ranked": self.ranked_count(),
            "duplicates": len(self.duplicate_ranks()),
            "valid_ranking": self.is_valid_ranking(),
        }
        if self._states and isinstance(self._states[0], AgentState):
            info["roles"] = {
                role.value: count for role, count in sorted(
                    self.role_counts().items(), key=lambda item: item[0].value
                )
            }
            info["average_phase"] = self.average_phase()
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Configuration(n={len(self)}, ranked={self.ranked_count()})"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def of_states(cls, states: Iterable[S]) -> "Configuration[S]":
        """Build a configuration from an iterable of states."""
        return cls(list(states))

    @classmethod
    def uniform(cls, n: int, factory: Callable[[], S]) -> "Configuration[S]":
        """Build a configuration of ``n`` agents created by ``factory``."""
        if n <= 0:
            raise ConfigurationError(f"population size must be positive, got {n}")
        return cls([factory() for _ in range(n)])
