"""``BatchedArraySimulator`` — S seed-replicas advanced in lockstep.

A study cell runs the same ``(protocol, workload, n)`` under many seeds;
serial execution pays the full per-interaction engine overhead once *per
replica*.  This module advances all replicas together: one shared
:class:`~repro.core.array_engine.EngineCache` tabulation, a ``(S, n)``
state-code matrix, and per-step vectorized gather → table-lookup → scatter
across the replica dimension, so the Python-level per-step cost is paid
once for the whole batch instead of once per seed.

Exactness contract
------------------
Each replica (a *lane*) is bit-identical to a serial
:class:`~repro.core.array_engine.ArraySimulator` run with the same seed,
``chunk_size`` and ``convergence_interval``:

* **rng streams** — every lane owns its own
  :class:`~repro.core.scheduler.UniformPairScheduler`; lanes refill their
  4096-pair buffers with the exact ``sample_chunk`` call sequence of the
  serial engine, so the generator state evolves identically.  Lanes that
  converge (or demote) simply stop sampling — their generator is never
  touched again, exactly as when a serial run ends, so remaining lanes'
  streams are unperturbed.
* **trajectories** — the lockstep walk executes every interaction in
  order via the shared packed transition tables.  The serial engine's
  bulk no-op elimination and SoA kernels are pure optimizations with
  identical observable semantics, so omitting them changes nothing.
* **convergence cadence** — all lanes share ``convergence_interval``,
  budget and metric cadence, which keeps block boundaries aligned (the
  lockstep invariant).  Per-lane ``changed_since_check`` flags and
  per-lane predicate evaluation reproduce the serial stopping
  interaction exactly.
* **mid-run demotion** — a lane whose stream hits a state pair that
  consumes randomness leaves the lockstep group at the exact interaction
  the serial engine would demote at, finishes the run on the object path
  with its own scheduler (draining its buffered pairs first), and keeps
  its own protocol instance — all other lanes stay vectorized.

Convergence screening
---------------------
Evaluating the exact Python predicate for every lane at every check
boundary would cost ``O(S · n)`` Python per ``convergence_interval``.
Protocols that implement :meth:`~repro.core.protocol.PopulationProtocol
.state_converged` get a vectorized screen instead: a per-code boolean
table is built lazily over the interned state space, and a lane runs the
exact predicate only when *every* agent's code passes the screen.  The
screen is a necessary condition, so the observable answer is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .array_engine import (
    _CHANGED_BIT,
    _CODE_BITS,
    _CODE_MASK,
    _FLAG_FIELD,
    _MAX_RANK,
    _RANK_FIELD,
    _RESET_BIT,
    ArraySimulator,
    EngineCache,
    _DenseKernel,
    _LazyKernel,
)
from .codec import compile_dense_tables
from .configuration import Configuration
from .jit_engine import batched_lockstep_loop
from .errors import (
    CodecError,
    RandomnessConsumed,
    SimulationLimitExceeded,
    StateSpaceTooLarge,
)
from .metrics import MetricsCollector
from .protocol import PopulationProtocol
from .rng import RandomState
from .scheduler import UniformPairScheduler
from .simulation import SimulationResult
from .soa import ColumnStore

__all__ = ["BatchedArraySimulator"]

#: Resync the sorted lookup arrays once this many pairs were tabulated
#: since the last sync (plus a fraction of the current table, so large
#: warm tables are not re-sorted for a trickle of novel pairs).  Only used
#: on the fallback path when the direct-address mirror is unavailable.
_SYNC_BASE = 64

#: Largest code-space dimension mirrored by the direct-address lookup
#: (``dim² × 8`` bytes — 0.5 GiB at the cap).  Beyond it the engine falls
#: back to the sorted-array mirror, which scales with tabulated pairs
#: instead of the squared state space.
_LUT_MAX_DIM = 8192

#: Dispatch a lockstep segment to the shared SoA kernel when at least this
#: share of its (sampled) pairs is untabulated.  The economics: a novel
#: pair costs one scalar tabulation (~14 µs) on the table path but the
#: tabulation is *one-time* and the cell replays each distinct pair dozens
#: of times, while the kernel pays its ordered per-pair walk (~0.7 µs) on
#: every occurrence — warm and novel alike.  Only genuine novelty storms
#: (start-up churn before the shared cache has seen a regime) are cheaper
#: through the kernel.
_KERNEL_NOVELTY_SHARE = 0.05

#: Stride for the novelty probe (probing every pair would cost as much as a
#: table-path step for nothing in warm regimes).
_PROBE_STRIDE = 4


class BatchedArraySimulator:
    """Advance ``S`` independent seed-replicas of one cell in lockstep.

    Parameters
    ----------
    protocols:
        One protocol instance per lane.  All instances must be equivalent
        (same type and constructor arguments — the
        :class:`~repro.core.array_engine.EngineCache` sharing contract);
        lane ``k``'s instance serves its object-path transitions and
        convergence predicate, instance 0 drives the shared tabulation.
    configurations:
        Optional per-lane initial configurations (default: each lane's
        ``protocol.initial_configuration()``).
    random_states:
        Per-lane seeds/generators — exactly what the serial engine for
        seed ``k`` would receive.
    metrics:
        Optional per-lane :class:`MetricsCollector` list (all lanes or
        none, identical ``interval`` — the lockstep invariant).
    convergence_interval, chunk_size, max_dense_states, cache:
        As for :class:`~repro.core.array_engine.ArraySimulator`; shared
        by every lane.
    use_soa_kernel:
        Opt-in here, unlike the serial engine (default ``False``).  The
        lockstep table walk amortizes each tabulation across every lane
        that replays the pair, so the batch is fastest riding the shared
        pair cache; the SoA kernel's per-interaction cost is the same
        class the serial engine pays, and routing segments through it
        also starves the cache (kernel-processed pairs are never
        tabulated), which keeps segments looking novel forever.  Enable
        it for protocols whose state space is too large to tabulate.
    """

    def __init__(
        self,
        protocols: Sequence[PopulationProtocol],
        configurations: Optional[Sequence[Configuration]] = None,
        random_states: Optional[Sequence[RandomState]] = None,
        metrics: Optional[Sequence[Optional[MetricsCollector]]] = None,
        convergence_interval: Optional[int] = None,
        chunk_size: int = 4096,
        max_dense_states: int = 64,
        cache: Optional[EngineCache] = None,
        use_soa_kernel: bool = False,
        topology=None,
    ):
        if not protocols:
            raise ValueError("need at least one lane")
        self._topology = topology
        self._protocols = list(protocols)
        lanes = len(self._protocols)
        n = self._protocols[0].n
        for protocol in self._protocols[1:]:
            if protocol.n != n:
                raise SimulationLimitExceeded(
                    "all batched lanes must share one population size"
                )
        self._lanes = lanes
        self._n = n
        if configurations is None:
            configurations = [p.initial_configuration() for p in self._protocols]
        self._configs = list(configurations)
        if len(self._configs) != lanes:
            raise ValueError("configurations must match the lane count")
        for config in self._configs:
            if config.population_size != n:
                raise SimulationLimitExceeded(
                    f"configuration has {config.population_size} agents "
                    f"but protocol was built for n={n}"
                )
        if random_states is None:
            random_states = [None] * lanes
        if len(random_states) != lanes:
            raise ValueError("random_states must match the lane count")
        self._random_states = list(random_states)
        if metrics is not None:
            if len(metrics) != lanes:
                raise ValueError("metrics must match the lane count")
            if all(m is None for m in metrics):
                metrics = None
            elif any(m is None for m in metrics):
                raise ValueError("metrics must cover every lane or none")
            else:
                intervals = {m.interval for m in metrics}
                if len(intervals) > 1:
                    raise ValueError(
                        "batched lanes must share one metrics interval, "
                        f"got {sorted(intervals)}"
                    )
        self._collectors = list(metrics) if metrics is not None else None
        self._ci = (
            convergence_interval
            if convergence_interval is not None
            else max(n, 4096)
        )
        if self._ci < 1:
            raise ValueError("convergence_interval must be positive")
        self._chunk = chunk_size
        self._max_dense_states = max_dense_states
        self._cache = cache if cache is not None else EngineCache()

        self._codec = None
        self._kernel = None
        self._codes: Optional[np.ndarray] = None
        self._flat: Optional[np.ndarray] = None
        self._dense_flat: Optional[np.ndarray] = None
        self._S = 0
        self._mode = self._select_mode()

        if self._mode == "serial-fallback":
            return

        # Per-lane schedulers: the same constructor call (and therefore
        # the same untouched generator) as the serial engine's.  With a
        # topology, each lane gets its own scheduler (and pair stream /
        # pending-delay state) over the one shared immutable graph —
        # exactly what the serial engine builds per seed.
        if topology is not None:
            if topology.n != n:
                raise SimulationLimitExceeded(
                    f"topology was built for n={topology.n} "
                    f"but protocols have n={n}"
                )
            from ..topologies.scheduler import TopologyScheduler

            self._schedulers = [
                TopologyScheduler(topology, state, chunk_size=chunk_size)
                for state in self._random_states
            ]
        else:
            self._schedulers = [
                UniformPairScheduler(n, state, chunk_size=chunk_size)
                for state in self._random_states
            ]
        self._buffer = np.empty((lanes, chunk_size, 2), dtype=np.int64)
        self._cursor = chunk_size  # empty: first use refills
        self._lane_cursor = [chunk_size] * lanes  # object-path drain point
        self._lane_mode = ["table"] * lanes

        self._interactions = 0
        self._final_interactions = [-1] * lanes
        self._rank_counts = np.zeros(lanes, dtype=np.int64)
        self._reset_counts = np.zeros(lanes, dtype=np.int64)
        self._changed_since_check = np.ones(lanes, dtype=bool)
        self._converged = np.zeros(lanes, dtype=bool)

        # Packed-value mirrors of the lazy pair cache.  Preferred: a
        # direct-address table indexed by ``a * dim + b`` (misses read as
        # -1 and are inserted scalar at tabulation time, so the mirror is
        # never stale).  Fallback beyond ``_LUT_MAX_DIM`` interned codes:
        # sorted key/value arrays re-sorted on a sync cadence.
        self._lut: Optional[np.ndarray] = None
        self._dim = 0
        self._lut_rows = 0
        self._sk = np.empty(0, dtype=np.int64)
        self._sv = np.empty(0, dtype=np.int64)
        self._pending_sync = 0
        if self._mode == "lazy":
            self._grow_lut()

        # Optional numba fast-forward through fully-warm lockstep steps
        # (``None`` without numba: the interpreted loop is the only path).
        self._jit_lockstep = batched_lockstep_loop()

        # Vectorized convergence screen over interned codes.
        self._screen = np.empty(0, dtype=bool)
        self._screen_len = 0
        self._screen_enabled = self._mode in ("dense", "lazy")

        # Shared protocol-provided SoA kernel (lazy mode only: dense
        # tables are complete, so there is no tabulation to avoid).  The
        # kernel consumes interleaved multi-lane pair blocks over the
        # concatenated (lanes * n)-agent population; pairs from different
        # lanes touch disjoint agents, so any step-major interleaving is a
        # valid sequential order and per-lane trajectories stay exact.
        self._soa = None
        self._soa_columns: Optional[ColumnStore] = None
        self._flat_list: Optional[list] = None
        if (
            use_soa_kernel
            and self._mode == "lazy"
            and self._protocols[0].consumes_randomness() is False
        ):
            soa = self._cache.soa_kernel
            if soa is None:
                soa = self._protocols[0].vectorized_kernel(self._codec)
                self._cache.soa_kernel = soa
            if soa is not None:
                store = self._cache.soa_columns
                if store is None:
                    store = ColumnStore(self._codec, soa.columns())
                    self._cache.soa_columns = store
                self._soa = soa
                self._soa_columns = store
                # ``ColumnStore.commit`` mirrors writes into a Python code
                # list for the serial walk; the batched engine reads codes
                # only through ``_flat``, so this mirror is write-only.
                self._flat_list = self._flat.tolist()

    # ------------------------------------------------------------------
    # Mode selection
    # ------------------------------------------------------------------
    def _select_mode(self) -> str:
        cache = self._cache
        protocol = self._protocols[0]
        if cache.mode == "object" or protocol.consumes_randomness() is True:
            return "serial-fallback"
        if self._n >= _MAX_RANK:
            return "serial-fallback"
        codec = cache.codec
        # Merge persisted tables (if a store is attached) before the first
        # interning: a dense artifact restores the compiled tables outright
        # and pair spills pre-warm the LUT's initial bulk scatter.
        cache.load_persisted(protocol)
        try:
            rows = [
                codec.encode_many(config.states) for config in self._configs
            ]
        except CodecError:
            return "serial-fallback"
        self._codec = codec
        self._codes = np.stack(rows).astype(np.int64, copy=False)
        self._flat = self._codes.reshape(-1)
        if cache.mode in (None, "dense"):
            try:
                if (
                    cache.dense_tables is None
                    or cache.dense_tables.size < codec.size
                ):
                    start_codes = sorted(
                        {int(code) for row in rows for code in row}
                    )
                    declared = list(protocol.seed_states())
                    if declared and len(declared) <= self._max_dense_states:
                        start_codes.extend(
                            codec.encode(state) for state in declared
                        )
                    cache.dense_tables = compile_dense_tables(
                        protocol, codec, start_codes,
                        max_states=self._max_dense_states,
                    )
                cache.mode = "dense"
                self._kernel = _DenseKernel(cache.dense_tables)
                self._S = cache.dense_tables.size
                self._dense_flat = self._kernel.packed.reshape(-1)
                return "dense"
            except StateSpaceTooLarge:
                cache.mode = "lazy"
            except RandomnessConsumed:
                cache.mode = "object"
                return "serial-fallback"
        self._kernel = _LazyKernel(protocol, codec, cache)
        return "lazy"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lanes(self) -> int:
        """Number of seed-replicas advanced by this simulator."""
        return self._lanes

    @property
    def mode(self) -> str:
        """``"dense"``, ``"lazy"`` or ``"serial-fallback"``."""
        return self._mode

    @property
    def protocol(self) -> PopulationProtocol:
        """Lane 0's protocol (extractors only read shared metadata)."""
        return self._protocols[0]

    def lane_protocol(self, lane: int) -> PopulationProtocol:
        """The protocol instance owned by ``lane``."""
        return self._protocols[lane]

    # ------------------------------------------------------------------
    # Lookup maintenance
    # ------------------------------------------------------------------
    def _sync_lookup(self) -> None:
        pair_dict = self._kernel.pair_dict
        count = len(pair_dict)
        keys = np.fromiter(pair_dict.keys(), dtype=np.int64, count=count)
        vals = np.fromiter(pair_dict.values(), dtype=np.int64, count=count)
        order = np.argsort(keys)
        self._sk = keys[order]
        self._sv = vals[order]
        self._pending_sync = 0

    def _grow_lut(self) -> None:
        """Extend the direct-address mirror over freshly interned codes.

        The mirror is one ``np.empty`` of ``_LUT_MAX_DIM**2`` slots with a
        *constant* row stride — virtual memory until touched, so the
        537 MB reservation is instant and resident pages track the codes
        actually in use.  Growing the code space only fills the new rows
        with the ``-1`` sentinel (a few hundred KB, never a full-table
        refill).  Past ``_LUT_MAX_DIM`` codes the mirror is dropped and
        the sorted-array fallback takes over.
        """
        size = self._codec.size
        if size > _LUT_MAX_DIM:
            self._lut = None
            if self._kernel.pair_dict:
                self._sync_lookup()
            return
        if self._lut is None and self._lut_rows == 0:
            self._lut = np.empty(_LUT_MAX_DIM * _LUT_MAX_DIM, dtype=np.int64)
            self._dim = _LUT_MAX_DIM
        self._lut[self._lut_rows * _LUT_MAX_DIM:size * _LUT_MAX_DIM].fill(-1)
        if self._lut_rows == 0:
            # Initial build may see a pre-warmed shared cache: scatter it
            # in bulk.  Later extensions skip this — pairs already in the
            # dict resolve through one scalar dict hit on first miss and
            # are mirrored then, which keeps extension cost proportional
            # to the new rows rather than the whole cache.
            pair_dict = self._kernel.pair_dict
            if pair_dict:
                count = len(pair_dict)
                keys = np.fromiter(
                    pair_dict.keys(), dtype=np.int64, count=count
                )
                vals = np.fromiter(
                    pair_dict.values(), dtype=np.int64, count=count
                )
                self._lut[
                    (keys >> _CODE_BITS) * _LUT_MAX_DIM + (keys & _CODE_MASK)
                ] = vals
        self._lut_rows = size

    def _lut_insert(self, key: int, value: int) -> None:
        """Mirror a freshly tabulated pair; grows over new interned codes."""
        if self._lut is None:
            return
        if self._codec.size > self._lut_rows:
            self._grow_lut()
            if self._lut is None:
                return
        self._lut[
            (key >> _CODE_BITS) * _LUT_MAX_DIM + (key & _CODE_MASK)
        ] = value

    def _lut_bulk_insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Mirror a batch of resolved pairs with one scatter."""
        if self._lut is None or len(keys) == 0:
            return
        if self._codec.size > self._lut_rows:
            self._grow_lut()
            if self._lut is None:
                return
        self._lut[
            (keys >> _CODE_BITS) * _LUT_MAX_DIM + (keys & _CODE_MASK)
        ] = values

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def _extend_screen(self) -> None:
        if not self._screen_enabled:
            return
        size = self._codec.size
        if size <= self._screen_len:
            return
        protocol = self._protocols[0]
        codec = self._codec
        fresh = []
        for code in range(self._screen_len, size):
            verdict = protocol.state_converged(codec.prototype(code))
            if verdict is None:
                self._screen_enabled = False
                return
            fresh.append(bool(verdict))
        self._screen = np.concatenate(
            [self._screen, np.asarray(fresh, dtype=bool)]
        )
        self._screen_len = size

    def _lane_view(self, lane: int) -> Configuration:
        if self._lane_mode[lane] == "object":
            return self._configs[lane]
        return Configuration(
            self._codec.prototype_view(self._codes[lane].tolist())
        )

    def _check_lane(self, lane: int) -> bool:
        if self._lane_mode[lane] == "table" and self._screen_enabled:
            self._extend_screen()
            if self._screen_enabled and not self._screen[
                self._codes[lane]
            ].all():
                return False
        return self._protocols[lane].has_converged(self._lane_view(lane))

    # ------------------------------------------------------------------
    # Object path (per-lane, after demotion)
    # ------------------------------------------------------------------
    def _materialize_lane(self, lane: int) -> None:
        self._configs[lane].states[:] = self._codec.materialize_many(
            self._codes[lane].tolist()
        )

    def _apply_pairs_object(self, lane: int, pairs) -> None:
        protocol = self._protocols[lane]
        states = self._configs[lane].states
        rng = self._schedulers[lane].rng
        ranks = 0
        resets = 0
        for i, j in pairs:
            result = protocol.transition(states[i], states[j], rng)
            if result.rank_assigned is not None:
                ranks += 1
            if result.reset_triggered:
                resets += 1
            if result.changed:
                self._changed_since_check[lane] = True
        self._rank_counts[lane] += ranks
        self._reset_counts[lane] += resets

    def _advance_lane_object(self, lane: int, count: int) -> None:
        # Drain the lane's already-sampled engine buffer before drawing
        # fresh pairs, exactly like the serial engine's object path.
        cursor = self._lane_cursor[lane]
        if cursor < self._chunk:
            take = min(count, self._chunk - cursor)
            self._apply_pairs_object(
                lane, self._buffer[lane, cursor:cursor + take].tolist()
            )
            self._lane_cursor[lane] = cursor + take
            count -= take
            if count <= 0:
                return
        protocol = self._protocols[lane]
        states = self._configs[lane].states
        scheduler = self._schedulers[lane]
        rng = scheduler.rng
        sample = scheduler.sample
        ranks = 0
        resets = 0
        for _ in range(count):
            i, j = sample()
            result = protocol.transition(states[i], states[j], rng)
            if result.rank_assigned is not None:
                ranks += 1
            if result.reset_triggered:
                resets += 1
            if result.changed:
                self._changed_since_check[lane] = True
        self._rank_counts[lane] += ranks
        self._reset_counts[lane] += resets

    # ------------------------------------------------------------------
    # Lockstep advancement
    # ------------------------------------------------------------------
    def _run_segment(self, table: List[int], seg: int):
        """Advance every table lane by up to ``seg`` buffered pairs.

        Returns ``(consumed, demoted)``: the number of lockstep steps
        executed (less than ``seg`` only when a lane demoted) and the
        lanes that hit a randomness-consuming pair at step
        ``consumed - 1`` (their state is exactly pre-that-step; the
        caller re-executes the raising pair on the object path).
        """
        lanes_np = np.asarray(table, dtype=np.int64)
        width = len(table)
        cursor = self._cursor
        pairs = self._buffer[lanes_np, cursor:cursor + seg, :]
        base = lanes_np * self._n
        gi = pairs[:, :, 0] + base[:, None]
        gj = pairs[:, :, 1] + base[:, None]
        # One step-major (seg, 2*width) index matrix: row ``step`` holds
        # every initiator position followed by every responder position.
        # A step's 2*width positions are always distinct (lanes occupy
        # disjoint agent ranges and i != j within a lane), so each step
        # needs exactly one gather and one scatter against ``flat``, and
        # the fused scratch buffers below make the walk allocation-free —
        # at lockstep widths the per-call numpy dispatch is the cost that
        # matters, not the arithmetic.
        gij = np.ascontiguousarray(np.concatenate([gi, gj], axis=0).T)
        flat = self._flat
        dense_flat = self._dense_flat
        vals_block = np.empty((seg, width), dtype=np.int64)
        kbuf = np.empty(width, dtype=np.int64)
        nxt = np.empty(2 * width, dtype=np.int64)
        consumed = seg
        demoted: List[int] = []
        if self._lut is not None and self._codec.size > self._lut_rows:
            # The SoA kernel interns codes without passing through
            # ``_lut_insert``; catch up before addressing by code.
            self._grow_lut()

        step = 0
        jit = self._jit_lockstep
        while step < seg:
            if jit is not None:
                # Fast-forward through consecutive fully-warm steps in one
                # native call (direct-address tables only; the sorted-array
                # fallback keeps the interpreted loop).  The returned step
                # is the first with a miss, left untouched for the batch
                # resolver below.
                if dense_flat is not None:
                    step = jit(
                        flat, gij, dense_flat, self._S,
                        vals_block, width, step, seg,
                    )
                elif self._lut is not None:
                    step = jit(
                        flat, gij, self._lut, _LUT_MAX_DIM,
                        vals_block, width, step, seg,
                    )
                if step >= seg:
                    break
            idx = gij[step]
            ab = flat[idx]
            a = ab[:width]
            b = ab[width:]
            vals = vals_block[step]
            if dense_flat is not None:
                np.multiply(a, self._S, out=kbuf)
                kbuf += b
                np.take(dense_flat, kbuf, out=vals)
            else:
                lut = self._lut
                if lut is not None:
                    np.multiply(a, _LUT_MAX_DIM, out=kbuf)
                    kbuf += b
                    np.take(lut, kbuf, out=vals)
                    misses = (
                        np.flatnonzero(vals < 0) if vals.min() < 0 else None
                    )
                else:
                    keys = (a << _CODE_BITS) | b
                    sk = self._sk
                    if sk.size:
                        pos = np.minimum(
                            np.searchsorted(sk, keys), sk.size - 1
                        )
                        hit = sk[pos] == keys
                        vals[:] = self._sv[pos]
                    else:
                        hit = np.zeros(width, dtype=bool)
                        vals[:] = 0
                    misses = None if hit.all() else np.flatnonzero(~hit)
                if misses is not None:
                    # All of a step's misses see settled codes, so they
                    # resolve as one batch: a single kernel call with the
                    # dispatch hoisted out of the per-pair loop, then one
                    # bulk LUT scatter instead of per-miss inserts.  Key
                    # order matches the old per-slot loop, so codec
                    # interning — and every trajectory — is unchanged.
                    miss_keys = [
                        (int(a[slot]) << _CODE_BITS) | int(b[slot])
                        for slot in misses
                    ]
                    values, raised_at, novel = (
                        self._kernel.evaluate_packed_batch(miss_keys)
                    )
                    self._pending_sync += novel
                    vals[misses] = values
                    resolved = np.ones(len(miss_keys), dtype=bool)
                    resolved[raised_at] = False
                    self._lut_bulk_insert(
                        np.asarray(miss_keys, dtype=np.int64)[resolved],
                        np.asarray(values, dtype=np.int64)[resolved],
                    )
                    if self._lut is None and self._pending_sync >= (
                        _SYNC_BASE + (self._sk.size >> 3)
                    ):
                        self._sync_lookup()
                    raised = [int(misses[pos]) for pos in raised_at]
                    if raised:
                        keep = np.ones(width, dtype=bool)
                        keep[raised] = False
                        vals[raised] = 0
                        flat[idx[:width][keep]] = vals[keep] & _CODE_MASK
                        flat[idx[width:][keep]] = (
                            vals[keep] >> _CODE_BITS
                        ) & _CODE_MASK
                        consumed = step + 1
                        demoted = [table[slot] for slot in raised]
                        break
            np.bitwise_and(vals, _CODE_MASK, out=nxt[:width])
            np.right_shift(vals, _CODE_BITS, out=nxt[width:])
            nxt[width:] &= _CODE_MASK
            flat[idx] = nxt
            step += 1

        block = vals_block[:consumed]
        if consumed:
            self._changed_since_check[lanes_np] |= (
                (block & _CHANGED_BIT) != 0
            ).any(axis=0)
            self._rank_counts[lanes_np] += ((block & _RANK_FIELD) != 0).sum(
                axis=0
            )
            self._reset_counts[lanes_np] += ((block & _RESET_BIT) != 0).sum(
                axis=0
            )
        return consumed, demoted

    # ------------------------------------------------------------------
    # Kernel-path lockstep advancement
    # ------------------------------------------------------------------
    def _segment_wants_kernel(self, table: List[int], seg: int) -> bool:
        """Estimate whether a segment is novelty-heavy.

        Probes a strided sample of the segment's pairs against the shared
        probe table with the lanes' *current* codes.  Untabulated pairs
        cost a full scalar tabulation each on the table path but nothing
        on the kernel path; warm pairs are cheaper on the vectorized
        lockstep walk.  The probe is a heuristic (codes evolve inside the
        segment), never a correctness decision.
        """
        if self._soa is None:
            return False
        lanes_np = np.asarray(table, dtype=np.int64)
        base = lanes_np * self._n
        cursor = self._cursor
        sample = self._buffer[lanes_np, cursor:cursor + seg:_PROBE_STRIDE, :]
        flat = self._flat
        a = flat[(sample[:, :, 0] + base[:, None]).ravel()]
        b = flat[(sample[:, :, 1] + base[:, None]).ravel()]
        classes = self._kernel.probe_class(a, b)
        novel = int(np.count_nonzero(classes == -1))
        return novel >= _KERNEL_NOVELTY_SHARE * classes.size

    def _run_segment_kernel(
        self, table: List[int], seg: int, block_tail: int
    ) -> List[int]:
        """Advance every table lane ``seg`` steps through the SoA kernel.

        Pairs are interleaved step-major over the concatenated population
        and consumed in a decline-resolving loop: the kernel commits a
        maximal exact prefix, the first declined pair is resolved through
        the pair table (tabulating it if novel), and the kernel re-enters
        on the remainder — the batched mirror of the serial engine's
        ``_process_chunk``.  ``block_tail`` is the number of interactions
        the enclosing block still owes *after* this segment, needed to
        finish a lane on the object path if a resolution consumes
        randomness.  Returns the lanes demoted that way.
        """
        lanes_np = np.asarray(table, dtype=np.int64)
        width = len(table)
        cursor = self._cursor
        base = lanes_np * self._n
        block = self._buffer[lanes_np, cursor:cursor + seg, :]
        init = np.ascontiguousarray((block[:, :, 0] + base[:, None]).T).ravel()
        resp = np.ascontiguousarray((block[:, :, 1] + base[:, None]).T).ravel()
        pos_lane = np.tile(lanes_np, seg)
        pos_step = np.repeat(np.arange(seg, dtype=np.int64), width)

        store = self._soa_columns
        store.bind(self._flat, self._flat_list)
        soa = self._soa
        rng = self._schedulers[table[0]].rng
        flat = self._flat
        pair_dict = self._kernel.pair_dict
        get = pair_dict.get
        evaluate = self._kernel.evaluate_packed
        rank_counts = self._rank_counts
        reset_counts = self._reset_counts
        changed = self._changed_since_check
        changed_any = False
        demoted: List[int] = []

        p = 0
        total = len(init)
        while p < total:
            outcome = soa.apply_chunk(init[p:], resp[p:], store, rng)
            processed = outcome.processed
            if processed:
                if outcome.changed:
                    changed_any = True
                if outcome.resets:
                    for rel in outcome.reset_positions:
                        reset_counts[pos_lane[p + rel]] += 1
                p += processed
            if p >= total:
                break
            # Resolve the declined pair through the pair table (tabulating
            # it if novel), then skim directly following pairs the cache
            # already holds — exactly the serial engine's walk-past-decline
            # plus warm-pair extension before re-entering the kernel.
            first = True
            while p < total:
                gi = int(init[p])
                gj = int(resp[p])
                a = int(flat[gi])
                b = int(flat[gj])
                key = (a << _CODE_BITS) | b
                value = get(key)
                if value is None:
                    if not first:
                        break  # novel pair past the decline: kernel's turn
                    try:
                        value = evaluate(key)
                    except RandomnessConsumed:
                        lane = int(pos_lane[p])
                        step = int(pos_step[p])
                        self._lane_mode[lane] = "object"
                        self._materialize_lane(lane)
                        # The object path re-executes the raising pair
                        # (it sits at the lane's buffer cursor) and the
                        # lane's remaining share of the block.
                        self._lane_cursor[lane] = cursor + step
                        self._advance_lane_object(
                            lane, (seg - step) + block_tail
                        )
                        demoted.append(lane)
                        keep = pos_lane[p:] != lane
                        init = init[p:][keep]
                        resp = resp[p:][keep]
                        pos_lane = pos_lane[p:][keep]
                        pos_step = pos_step[p:][keep]
                        total = len(init)
                        p = 0
                        break
                    self._pending_sync += 1
                    self._lut_insert(key, value)
                first = False
                lane = pos_lane[p]
                flat[gi] = value & _CODE_MASK
                flat[gj] = (value >> _CODE_BITS) & _CODE_MASK
                if value & _FLAG_FIELD:
                    if value & _CHANGED_BIT:
                        changed[lane] = True
                    if value & _RANK_FIELD:
                        rank_counts[lane] += 1
                    if value & _RESET_BIT:
                        reset_counts[lane] += 1
                p += 1
        if self._lut is None and self._pending_sync >= (
            _SYNC_BASE + (self._sk.size >> 3)
        ):
            self._sync_lookup()
        if changed_any:
            for lane in table:
                if self._lane_mode[lane] == "table":
                    changed[lane] = True
        return demoted

    def _advance_block(self, active: List[int], count: int) -> None:
        table = [k for k in active if self._lane_mode[k] == "table"]
        already_object = [
            k for k in active if self._lane_mode[k] == "object"
        ]
        done = 0
        while done < count and table:
            if self._cursor >= self._chunk:
                for lane in table:
                    self._buffer[lane] = self._schedulers[lane].sample_chunk(
                        self._chunk
                    )
                self._cursor = 0
            seg = min(count - done, self._chunk - self._cursor)
            if self._segment_wants_kernel(table, seg):
                kernel_demoted = self._run_segment_kernel(
                    table, seg, count - done - seg
                )
                self._cursor += seg
                done += seg
                for lane in kernel_demoted:
                    table.remove(lane)
                continue
            consumed, demoted = self._run_segment(table, seg)
            self._cursor += consumed
            done += consumed
            for lane in demoted:
                # The raising pair was not applied: re-execute it (and
                # the lane's remaining block steps) on the object path,
                # mirroring the serial engine's mid-chunk demotion.
                self._lane_mode[lane] = "object"
                self._materialize_lane(lane)
                self._lane_cursor[lane] = self._cursor - 1
                self._advance_lane_object(lane, count - done + 1)
                table.remove(lane)
        for lane in already_object:
            self._advance_lane_object(lane, count)

    # ------------------------------------------------------------------
    # Driving loop
    # ------------------------------------------------------------------
    def run(
        self,
        max_interactions: int,
        stop_on_convergence: bool = True,
    ) -> List[SimulationResult]:
        """Run every lane; returns one serial-identical result per lane."""
        if max_interactions < 0:
            raise ValueError("max_interactions must be non-negative")
        if self._mode == "serial-fallback":
            return self._run_serial(max_interactions, stop_on_convergence)

        lanes = self._lanes
        collectors = self._collectors
        if collectors is not None:
            for lane in range(lanes):
                collectors[lane].record(0, self._lane_view(lane))

        budget_end = max_interactions
        for lane in range(lanes):
            self._converged[lane] = self._check_lane(lane)
        next_check = self._ci
        active = list(range(lanes))

        while True:
            if stop_on_convergence:
                still = []
                for lane in active:
                    if self._converged[lane]:
                        self._final_interactions[lane] = self._interactions
                    else:
                        still.append(lane)
                active = still
            if not active or self._interactions >= budget_end:
                break
            target = min(budget_end, next_check)
            if collectors is not None:
                due = collectors[active[0]].next_due
                if due <= self._interactions:
                    target = self._interactions + 1
                else:
                    target = min(target, due)
            self._advance_block(active, target - self._interactions)
            self._interactions = target
            if collectors is not None:
                for lane in active:
                    collectors[lane].maybe_record(
                        target, self._lane_view(lane)
                    )
            if target >= next_check:
                for lane in active:
                    if self._changed_since_check[lane]:
                        self._converged[lane] = self._check_lane(lane)
                        self._changed_since_check[lane] = False
                next_check = self._interactions + self._ci

        results = []
        for lane in range(lanes):
            if self._final_interactions[lane] < 0:
                self._final_interactions[lane] = self._interactions
            converged = self._check_lane(lane)
            final = self._final_interactions[lane]
            if collectors is not None:
                self._record_final_snapshot(lane, final)
            if self._lane_mode[lane] == "table":
                self._materialize_lane(lane)
            results.append(
                SimulationResult(
                    converged=converged,
                    interactions=final,
                    configuration=self._configs[lane],
                    metrics=(
                        collectors[lane].series
                        if collectors is not None
                        else {}
                    ),
                    rank_assignments=int(self._rank_counts[lane]),
                    resets=int(self._reset_counts[lane]),
                    protocol=self._protocols[lane].describe(),
                )
            )
        return results

    def _record_final_snapshot(self, lane: int, final: int) -> None:
        collector = self._collectors[lane]
        for series in collector.series.values():
            if series.interactions and series.interactions[-1] == final:
                return
            break
        collector.record(final, self._lane_view(lane))

    def _run_serial(
        self, max_interactions: int, stop_on_convergence: bool
    ) -> List[SimulationResult]:
        """Exact per-lane fallback when lockstep table modes are unavailable."""
        results = []
        for lane in range(self._lanes):
            simulator = ArraySimulator(
                self._protocols[lane],
                configuration=self._configs[lane],
                random_state=self._random_states[lane],
                metrics=(
                    self._collectors[lane]
                    if self._collectors is not None
                    else None
                ),
                convergence_interval=self._ci,
                chunk_size=self._chunk,
                max_dense_states=self._max_dense_states,
                cache=self._cache,
                topology=self._topology,
            )
            results.append(
                simulator.run(max_interactions, stop_on_convergence)
            )
        return results
