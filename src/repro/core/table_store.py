"""Persistent cross-process tabulation store: make every cold run warm.

The array-family engines tabulate the protocol transition function lazily
— ~16 µs of protocol Python per state pair — and keep the result in an
in-memory :class:`~repro.core.array_engine.EngineCache`.  That warmth dies
with the process, so every ``--jobs`` worker, every ``repro worker`` and
every CLI invocation re-pays the full tabulation cost.  This module
persists the compiled artifacts on disk, content-addressed by protocol
identity, so the *second* process to touch a protocol starts at the warm
floor:

* **Pair spills** (``pairs/spill-*``): the packed ``(key, outcome)``
  int64 arrays a run newly tabulated, written on finalize.  Tabulation is
  lazy and trajectory-driven, so warmth accumulates *incrementally*: a
  load unions all spills (later wins per pair — outcomes are
  deterministic, so duplicates agree) and remaps the spill's private
  state codes onto the live codec.
* **Dense tables** (``dense/``): the complete ``(S × S)`` transition
  arrays for protocols whose reachable space enumerates, loaded with
  ``np.load(mmap_mode="r")`` so N worker processes share one OS page
  cache instead of N private copies.
* **Group models** (``group/model-*``): the group-count engine's
  productive-transition model (tabulated codes + successor map), so e.g.
  the epidemic preset at n=10⁶ skips re-deriving transitions entirely.

Every artifact is a directory written to a temp sibling and atomically
``os.rename``d into place, so readers never observe a half-written
artifact and concurrent writers race harmlessly (the loser's rename
fails and its temp dir is discarded).  Artifacts are keyed by
``(protocol identity, codec fields, FORMAT_VERSION)``; a corrupt,
truncated or stale-format artifact is warned about, deleted and rebuilt
by ordinary retabulation — the store can change *when* tables are
computed, never *what* they contain.

Store locations are wired through ``EngineCache(persist_dir=...)``; the
study layer and serving workers point every process at a per-study
``tables/`` directory, overridable via the ``REPRO_TABLE_CACHE``
environment variable (see ``docs/engines.md``).
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import shutil
import uuid
import warnings
from dataclasses import fields as dataclass_fields, is_dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FORMAT_VERSION",
    "ENV_VAR",
    "TableStore",
    "TableStoreEntry",
    "TableStoreError",
    "consume_session_stats",
    "record_loaded_pairs",
    "resolve_store_dir",
    "session_stats",
]

#: Bumping this invalidates every existing artifact: the version is part
#: of the content-address *and* stamped in each manifest, so old stores
#: are simply never read (and deleted on contact if a directory collides).
FORMAT_VERSION = 1

#: Environment variable naming the store root for the current process
#: tree.  ``Study.run`` exports it around the fan-out; serving workers
#: derive it from the study directory; operators may pre-set it to share
#: one store across studies.
ENV_VAR = "REPRO_TABLE_CACHE"

#: Dense-array payload names, in manifest order.
_DENSE_ARRAYS = ("next_initiator", "next_responder", "changed", "rank", "reset")


class TableStoreError(RuntimeError):
    """A store artifact failed validation (treated as corrupt)."""


# ----------------------------------------------------------------------
# Session statistics (per process): the CLI reports "table store hits"
# after a run, and tests assert that a second process actually loaded.
# ----------------------------------------------------------------------
_SESSION_STATS = {
    "pairs_loaded": 0,      # tabulated pairs merged from spills
    "spills_loaded": 0,     # readable spill artifacts merged
    "dense_loaded": 0,      # dense table artifacts mmap-loaded
    "group_loaded": 0,      # group transition models restored
    "pairs_spilled": 0,     # pairs written out by this process
    "spills_written": 0,    # spill artifacts written by this process
    "artifacts_discarded": 0,  # corrupt/stale artifacts deleted
}


def session_stats() -> Dict[str, int]:
    """A copy of this process's cumulative store counters."""
    return dict(_SESSION_STATS)


def consume_session_stats() -> Dict[str, int]:
    """Return and reset this process's store counters."""
    snapshot = dict(_SESSION_STATS)
    for key in _SESSION_STATS:
        _SESSION_STATS[key] = 0
    return snapshot


def record_loaded_pairs(count: int) -> None:
    """Credit ``count`` merged pairs to the session counters."""
    _SESSION_STATS["pairs_loaded"] += int(count)


def resolve_store_dir() -> Optional[Path]:
    """The store root named by :data:`ENV_VAR`, or ``None``."""
    value = os.environ.get(ENV_VAR, "").strip()
    return Path(value) if value else None


# ----------------------------------------------------------------------
# State (de)serialization: manifests carry the codec's interned states so
# a loader can remap a spill's private codes onto any live codec.
# ----------------------------------------------------------------------
def _state_values(state) -> tuple:
    as_tuple = getattr(state, "as_tuple", None)
    if as_tuple is not None:
        return tuple(as_tuple())
    if is_dataclass(state):
        return tuple(
            getattr(state, field.name) for field in dataclass_fields(state)
        )
    raise TableStoreError(
        f"cannot serialize state of type {type(state).__name__}"
    )


def _encode_value(value):
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"f": repr(value)}  # exact round-trip, NaN/inf included
    if isinstance(value, tuple):
        return {"t": [_encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"l": [_encode_value(item) for item in value]}
    if isinstance(value, (np.integer, np.bool_)):
        return int(value)
    raise TableStoreError(
        f"cannot serialize state field of type {type(value).__name__}"
    )


def _decode_value(value):
    if isinstance(value, dict):
        if "t" in value:
            return tuple(_decode_value(item) for item in value["t"])
        if "l" in value:
            return [_decode_value(item) for item in value["l"]]
        if "f" in value:
            return float(value["f"])
    return value


def _encode_states(states: Sequence) -> dict:
    types: List[List[str]] = []
    type_index: Dict[type, int] = {}
    rows = []
    for state in states:
        cls = type(state)
        index = type_index.get(cls)
        if index is None:
            index = type_index[cls] = len(types)
            types.append([cls.__module__, cls.__qualname__])
        rows.append(
            [index, [_encode_value(item) for item in _state_values(state)]]
        )
    return {"types": types, "states": rows}


def _decode_states(payload: dict) -> list:
    classes = []
    for module, qualname in payload["types"]:
        obj = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        classes.append(obj)
    return [
        classes[index](*[_decode_value(item) for item in values])
        for index, values in payload["states"]
    ]


# ----------------------------------------------------------------------
# Atomic artifact IO
# ----------------------------------------------------------------------
def _write_artifact(
    final_dir: Path, manifest: dict, arrays: Dict[str, np.ndarray]
) -> bool:
    """Write ``manifest.json`` + one ``.npy`` per array, atomically.

    The directory is assembled under a temp sibling and renamed into
    place; a rename that loses a race (target already exists) discards
    the temp dir and reports failure — the winner's artifact is as good.
    """
    final_dir.parent.mkdir(parents=True, exist_ok=True)
    tmp = final_dir.parent / f".tmp-{uuid.uuid4().hex}"
    tmp.mkdir()
    try:
        for name, array in arrays.items():
            np.save(str(tmp / name), np.ascontiguousarray(array))
        (tmp / "manifest.json").write_text(json.dumps(manifest))
        os.rename(tmp, final_dir)
        return True
    except OSError:
        shutil.rmtree(tmp, ignore_errors=True)
        return False


def _load_manifest(directory: Path, kind: str) -> dict:
    manifest = json.loads((directory / "manifest.json").read_text())
    if manifest.get("format") != FORMAT_VERSION:
        raise TableStoreError(
            f"format {manifest.get('format')!r} != {FORMAT_VERSION}"
        )
    if manifest.get("kind") != kind:
        raise TableStoreError(f"kind {manifest.get('kind')!r} != {kind!r}")
    return manifest


def _discard(directory: Path, error: Exception) -> None:
    """Warn about and delete an unreadable artifact (it will be rebuilt)."""
    _SESSION_STATS["artifacts_discarded"] += 1
    warnings.warn(
        f"discarding unreadable table-store artifact {directory} "
        f"({type(error).__name__}: {error}); it will be rebuilt by "
        f"retabulation"
    )
    shutil.rmtree(directory, ignore_errors=True)


def _load_npy(path: Path) -> np.ndarray:
    """``np.load(mmap_mode="r")`` — truncation surfaces as an exception.

    A torn tail cannot hide: ``mmap`` refuses a mapping longer than the
    file, so a payload shorter than its header claims raises right here
    and the caller discards the artifact.
    """
    return np.load(str(path), mmap_mode="r", allow_pickle=False)


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def protocol_key(protocol) -> Tuple[str, dict]:
    """``(directory name, key payload)`` for a protocol's artifacts.

    The address hashes the protocol's :meth:`describe` dict (type name,
    population size and every constructor parameter subclasses surface),
    its declared codec fields, and :data:`FORMAT_VERSION` — the same
    equal-parameterization contract under which sharing an
    :class:`~repro.core.array_engine.EngineCache` is sound.
    """
    describe = dict(protocol.describe())
    payload = {
        "describe": describe,
        "codec_fields": list(protocol.codec_fields() or ()),
        "format": FORMAT_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    name = str(describe.get("name", "protocol"))
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "-" for ch in name
    ) or "protocol"
    return f"{safe}-{digest}", payload


class TableStoreEntry:
    """All persisted artifacts for one content-addressed protocol key."""

    def __init__(self, directory, key_payload: Optional[dict] = None):
        self.directory = Path(directory)
        self._key_payload = key_payload

    @property
    def name(self) -> str:
        return self.directory.name

    def _ensure_key(self) -> None:
        path = self.directory / "key.json"
        if path.exists():
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        if self._key_payload is None:
            return
        tmp = self.directory / f".key-{uuid.uuid4().hex}"
        tmp.write_text(
            json.dumps(self._key_payload, sort_keys=True, default=str,
                       indent=2)
        )
        os.replace(tmp, path)

    def key_payload(self) -> Optional[dict]:
        """The stored key payload (``None`` if unreadable/absent)."""
        if self._key_payload is not None:
            return self._key_payload
        try:
            return json.loads((self.directory / "key.json").read_text())
        except (OSError, ValueError):
            return None

    # ---------------------------------------------------------------- meta
    def mode_hint(self) -> Optional[str]:
        """The engine mode a previous process resolved ("dense"/"lazy")."""
        path = self.directory / "meta.json"
        try:
            meta = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError as error:
            _discard_file(path, error)
            return None
        if meta.get("format") != FORMAT_VERSION:
            return None
        mode = meta.get("mode")
        return mode if mode in ("dense", "lazy") else None

    def save_mode_hint(self, mode: str) -> None:
        if self.mode_hint() == mode:
            return
        self._ensure_key()
        tmp = self.directory / f".meta-{uuid.uuid4().hex}"
        tmp.write_text(json.dumps({"format": FORMAT_VERSION, "mode": mode}))
        os.replace(tmp, self.directory / "meta.json")

    # --------------------------------------------------------------- pairs
    def write_pair_spill(
        self, states: Sequence, keys: np.ndarray, vals: np.ndarray
    ) -> bool:
        """Persist newly tabulated pairs as one immutable spill artifact."""
        manifest = {
            "format": FORMAT_VERSION,
            "kind": "pairs",
            "count": int(len(keys)),
            **_encode_states(states),
        }
        self._ensure_key()
        ok = _write_artifact(
            self.directory / "pairs" / f"spill-{uuid.uuid4().hex[:12]}",
            manifest,
            {
                "keys": np.asarray(keys, dtype=np.int64),
                "vals": np.asarray(vals, dtype=np.int64),
            },
        )
        if ok:
            _SESSION_STATS["spills_written"] += 1
            _SESSION_STATS["pairs_spilled"] += int(len(keys))
        return ok

    def load_pair_spills(self) -> List[Tuple[list, np.ndarray, np.ndarray]]:
        """All readable spills as ``(states, keys, vals)``, name order.

        Unreadable spills (truncated payload, stale format, garbage JSON)
        are warned about and deleted; the pairs they held are simply
        retabulated on demand.
        """
        pairs_dir = self.directory / "pairs"
        if not pairs_dir.is_dir():
            return []
        spills = []
        for spill in sorted(pairs_dir.iterdir()):
            if not spill.name.startswith("spill-"):
                continue
            try:
                manifest = _load_manifest(spill, "pairs")
                states = _decode_states(manifest)
                keys = _load_npy(spill / "keys.npy")
                vals = _load_npy(spill / "vals.npy")
                count = int(manifest["count"])
                if keys.shape != (count,) or vals.shape != (count,):
                    raise TableStoreError(
                        f"payload shape {keys.shape}/{vals.shape} != "
                        f"({count},)"
                    )
                if keys.dtype != np.int64 or vals.dtype != np.int64:
                    raise TableStoreError("payload dtype is not int64")
                spills.append((states, keys, vals))
            except Exception as error:
                _discard(spill, error)
        _SESSION_STATS["spills_loaded"] += len(spills)
        return spills

    # --------------------------------------------------------------- dense
    def write_dense(
        self, states: Sequence, arrays: Dict[str, np.ndarray]
    ) -> bool:
        """Persist complete dense tables (first writer wins, then no-op)."""
        if (self.directory / "dense").is_dir():
            return False
        if set(arrays) != set(_DENSE_ARRAYS):
            raise TableStoreError(f"dense arrays {sorted(arrays)} unexpected")
        manifest = {
            "format": FORMAT_VERSION,
            "kind": "dense",
            "size": len(states),
            **_encode_states(states),
        }
        self._ensure_key()
        return _write_artifact(self.directory / "dense", manifest, arrays)

    def load_dense(self) -> Optional[Tuple[list, Dict[str, np.ndarray]]]:
        """``(states, mmapped arrays)`` for the dense artifact, if sound."""
        dense = self.directory / "dense"
        if not dense.is_dir():
            return None
        try:
            manifest = _load_manifest(dense, "dense")
            states = _decode_states(manifest)
            size = int(manifest["size"])
            if size != len(states):
                raise TableStoreError(
                    f"size {size} != {len(states)} states"
                )
            arrays = {
                name: _load_npy(dense / f"{name}.npy")
                for name in _DENSE_ARRAYS
            }
            for name, array in arrays.items():
                if array.shape != (size, size):
                    raise TableStoreError(
                        f"{name} shape {array.shape} != ({size}, {size})"
                    )
        except Exception as error:
            _discard(dense, error)
            return None
        _SESSION_STATS["dense_loaded"] += 1
        return states, arrays

    # --------------------------------------------------------------- group
    def write_group_model(
        self,
        states: Sequence,
        tabulated: np.ndarray,
        pairs: np.ndarray,
    ) -> bool:
        """Persist a group-engine transition-model snapshot.

        ``tabulated`` is the model's code tabulation order; ``pairs`` is
        an ``(P, 4)`` int64 array of ``(x, y, a, b)`` productive
        transitions *in insertion order* — replaying it reproduces the
        model's row/column lists (and therefore its sampling order)
        exactly.  Older/smaller snapshots are pruned after a successful
        write, keeping the entry at one model artifact.
        """
        manifest = {
            "format": FORMAT_VERSION,
            "kind": "group",
            "tabulated_count": int(len(tabulated)),
            **_encode_states(states),
        }
        self._ensure_key()
        target = self.directory / "group" / f"model-{uuid.uuid4().hex[:12]}"
        ok = _write_artifact(
            target,
            manifest,
            {
                "tabulated": np.asarray(tabulated, dtype=np.int64),
                "pairs": np.asarray(pairs, dtype=np.int64).reshape(-1, 4),
            },
        )
        if ok:
            for other in sorted((self.directory / "group").iterdir()):
                if other.name.startswith("model-") and other != target:
                    shutil.rmtree(other, ignore_errors=True)
        return ok

    def load_group_model(
        self,
    ) -> Optional[Tuple[list, np.ndarray, np.ndarray]]:
        """The largest readable model snapshot as ``(states, tabulated,
        pairs)``, or ``None``."""
        group_dir = self.directory / "group"
        if not group_dir.is_dir():
            return None
        best = None
        for model in sorted(group_dir.iterdir()):
            if not model.name.startswith("model-"):
                continue
            try:
                manifest = _load_manifest(model, "group")
                states = _decode_states(manifest)
                tabulated = _load_npy(model / "tabulated.npy")
                pairs = _load_npy(model / "pairs.npy")
                count = int(manifest["tabulated_count"])
                if tabulated.shape != (count,):
                    raise TableStoreError(
                        f"tabulated shape {tabulated.shape} != ({count},)"
                    )
                if pairs.ndim != 2 or pairs.shape[1] != 4:
                    raise TableStoreError(f"pairs shape {pairs.shape}")
            except Exception as error:
                _discard(model, error)
                continue
            if best is None or len(tabulated) > len(best[1]):
                best = (states, tabulated, pairs)
        if best is not None:
            _SESSION_STATS["group_loaded"] += 1
        return best

    # ----------------------------------------------------------- listing
    def describe(self) -> dict:
        """Summary row for ``repro cache list``."""
        spill_count = 0
        pair_count = 0
        pairs_dir = self.directory / "pairs"
        if pairs_dir.is_dir():
            for spill in pairs_dir.iterdir():
                if not spill.name.startswith("spill-"):
                    continue
                spill_count += 1
                try:
                    manifest = json.loads(
                        (spill / "manifest.json").read_text()
                    )
                    pair_count += int(manifest.get("count", 0))
                except (OSError, ValueError):
                    pass
        dense_size = None
        try:
            manifest = json.loads(
                (self.directory / "dense" / "manifest.json").read_text()
            )
            dense_size = int(manifest.get("size", 0))
        except (OSError, ValueError):
            pass
        group_count = None
        group_dir = self.directory / "group"
        if group_dir.is_dir():
            for model in group_dir.iterdir():
                try:
                    manifest = json.loads(
                        (model / "manifest.json").read_text()
                    )
                    count = int(manifest.get("tabulated_count", 0))
                except (OSError, ValueError):
                    continue
                group_count = max(group_count or 0, count)
        bytes_on_disk = sum(
            path.stat().st_size
            for path in self.directory.rglob("*")
            if path.is_file()
        )
        return {
            "name": self.name,
            "spills": spill_count,
            "pairs": pair_count,
            "dense_states": dense_size,
            "group_states": group_count,
            "mode": self.mode_hint(),
            "bytes": bytes_on_disk,
        }

    def clear(self) -> None:
        shutil.rmtree(self.directory, ignore_errors=True)


def _discard_file(path: Path, error: Exception) -> None:
    _SESSION_STATS["artifacts_discarded"] += 1
    warnings.warn(
        f"discarding unreadable table-store file {path} "
        f"({type(error).__name__}: {error})"
    )
    try:
        os.unlink(path)
    except OSError:
        pass


class TableStore:
    """A root directory of per-protocol :class:`TableStoreEntry` dirs."""

    def __init__(self, root):
        self.root = Path(root)

    def entry_for(self, protocol) -> TableStoreEntry:
        dirname, payload = protocol_key(protocol)
        return TableStoreEntry(self.root / dirname, payload)

    def entries(self) -> List[TableStoreEntry]:
        if not self.root.is_dir():
            return []
        return [
            TableStoreEntry(child)
            for child in sorted(self.root.iterdir())
            if child.is_dir() and not child.name.startswith(".")
        ]

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)
