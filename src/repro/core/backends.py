"""Engine backends: a registry with per-cell capability negotiation.

Engine selection used to be a string set hardcoded in the experiment layer
(``_ENGINES`` in ``study.py``) plus ad-hoc branches in the CLI and the
drivers — every rule about what an engine can run ("aggregate only
simulates space-efficient-ranking", "the array engine falls back to the
object path when transitions draw randomness") lived far away from the
engine it described.  This module makes the engines first-class:

* a :class:`Backend` names one engine and answers a
  :meth:`~Backend.capabilities` probe — given a protocol instance, a
  workload name and a population size, it reports whether it can run the
  cell, its exactness class, whether it records metric series, and a
  relative throughput hint;
* a registry maps engine names to backends
  (:func:`register_backend` / :func:`get_backend` / :func:`backend_names`);
* :func:`resolve_backend` turns a requested engine — a concrete name or
  the :data:`AUTO_ENGINE` sentinel ``"auto"`` — into the backend that will
  serve a cell, picking the fastest capable backend under ``"auto"``.

Resolution is a pure function of ``(protocol, workload, n, requirements)``,
so it is deterministic across processes: a parallel study resolves every
cell exactly like a serial one, and the resolved backend name is recorded
per row.

Exactness classes
-----------------
``"trajectory"``
    Bit-identical to the reference simulator for the same seed (the
    reference itself, and the array engine on every path).
``"distribution"``
    Exact in distribution but simulated in a different representation
    (the aggregate and group-count engines evolve state counts, not
    agents).

The reference and array backends are registered here; the aggregate and
group-count backends' *capability logic* also lives here (it needs
nothing but the protocol's declarations), while their execution stays
with the experiment layer — they simulate counts, not agents, and
therefore have ``kind`` ``"aggregate"``/``"count"`` rather than the
agent-level ``create`` contract.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .errors import ExperimentError
from .protocol import PopulationProtocol

__all__ = [
    "AUTO_ENGINE",
    "Backend",
    "BackendCapability",
    "ReferenceBackend",
    "ArrayBackend",
    "ArrayBatchedBackend",
    "ArrayJitBackend",
    "AggregateBackend",
    "GroupCountBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "engine_choices",
    "resolve_backend",
    "capability_matrix",
]

#: Engine name that asks the registry to pick the fastest capable backend.
AUTO_ENGINE = "auto"


@dataclass(frozen=True)
class BackendCapability:
    """One backend's answer to "can you run this cell, and how well?".

    Attributes
    ----------
    supported:
        Whether the backend can run the cell at all.
    exactness:
        ``"trajectory"`` (bit-identical to the reference for the same
        seed) or ``"distribution"`` (exact in distribution); empty when
        unsupported.
    supports_series:
        Whether the backend can record metric time series.
    supports_events:
        Whether the backend can apply agent-level mid-run perturbation
        events (:mod:`repro.scenarios`) — requires real per-agent state
        the event appliers can rewrite between segments.
    supports_topology:
        Whether the backend can run cells on a restricted interaction
        topology (:mod:`repro.topologies`) — requires an agent-level pair
        stream the topology scheduler can inject into.  The count-level
        engines answer complete-only: a state-count vector cannot see
        which *agents* are adjacent.
    throughput_hint:
        Expected throughput relative to the reference simulator (1.0);
        the ``auto`` resolver maximizes this among supported backends.
    reason:
        Why the cell is unsupported, or a note on how it will run (e.g.
        the array engine's object fallback).
    """

    supported: bool
    exactness: str = ""
    supports_series: bool = True
    supports_events: bool = True
    supports_topology: bool = True
    throughput_hint: float = 0.0
    reason: str = ""


class Backend(abc.ABC):
    """One simulation engine, as seen by the experiment layer."""

    #: Registry name (the ``engine=`` string).
    name: str = "backend"
    #: ``"agent"`` backends implement :meth:`create`; ``"aggregate"``
    #: backends simulate counts and are driven by the experiment layer.
    kind: str = "agent"
    #: Whether :meth:`create` accepts a shared ``EngineCache``.
    uses_cache: bool = False
    #: Whether :meth:`create_batch` advances a whole same-spec seed group
    #: in one call (the experiment layer then ships cell *groups* to this
    #: backend instead of cells).
    batches: bool = False

    @abc.abstractmethod
    def capabilities(
        self,
        protocol: PopulationProtocol,
        workload: str,
        n: int,
        *,
        series: bool = False,
        events: bool = False,
        stop_on_convergence: bool = True,
        batch_seeds: int = 1,
        topology: Optional[str] = None,
    ) -> BackendCapability:
        """Probe whether (and how well) this backend can run one cell.

        ``protocol`` is a constructed protocol instance (so declarations
        like :meth:`~repro.core.protocol.PopulationProtocol
        .consumes_randomness` are available), ``workload`` the
        initial-configuration family name, ``series`` whether the cell
        records metric time series, ``events`` whether the cell's
        scenario fires mid-run perturbation events, ``batch_seeds`` how
        many same-spec seeds would run as one group — backends that
        advance replicas in lockstep scale their throughput hint with it;
        everyone else answers for one seed at a time.  ``topology`` is
        the restricted interaction-topology family name (``None`` for the
        paper's complete graph); count-level backends answer
        complete-only.
        """

    def create(self, protocol: PopulationProtocol, *, cache=None, **kwargs):
        """Build a simulator for an agent-level cell (``kind == "agent"``).

        ``kwargs`` are the shared simulator arguments (``configuration``,
        ``random_state``, ``metrics``, ``convergence_interval``); ``cache``
        is an :class:`~repro.core.array_engine.EngineCache` honoured only
        by backends with ``uses_cache``.
        """
        raise NotImplementedError(
            f"backend {self.name!r} (kind={self.kind!r}) does not build "
            "agent-level simulators"
        )

    def create_batch(self, protocols: Sequence[PopulationProtocol], *,
                     cache=None, **kwargs):
        """Build one simulator advancing a whole seed group in lockstep.

        Only meaningful for backends with :attr:`batches`; ``kwargs`` are
        the per-lane sequences (``configurations``, ``random_states``,
        ``metrics``) plus the shared simulator arguments.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not batch seed groups"
        )


class ReferenceBackend(Backend):
    """The agent-level ground-truth simulator: always capable, baseline speed."""

    name = "reference"

    def capabilities(self, protocol, workload, n, *, series=False,
                     events=False, stop_on_convergence=True,
                     batch_seeds=1, topology=None):
        return BackendCapability(
            supported=True,
            exactness="trajectory",
            supports_series=True,
            throughput_hint=1.0,
        )

    def create(self, protocol, *, cache=None, **kwargs):
        from .simulation import Simulator

        return Simulator(protocol, **kwargs)


class ArrayBackend(Backend):
    """The vectorized engine: bit-identical, fast when pairs tabulate.

    The throughput hint negotiates with the protocol's rng-consumption
    declaration: a protocol that declares randomness-free transitions gets
    the warm tabulated paths (measured ~12x on full ``StableRanking``
    runs), an undeclared protocol is assumed tabulable but scored
    conservatively, and a protocol that declares rng consumption would run
    on the object fallback — still exact, but no faster than the
    reference, so ``auto`` prefers the reference for it.
    """

    name = "array"
    uses_cache = True

    #: Hints by declaration: declared-deterministic, unknown, declared-rng.
    HINT_TABULATED = 12.0
    HINT_UNKNOWN = 3.0
    HINT_OBJECT_FALLBACK = 0.8

    def capabilities(self, protocol, workload, n, *, series=False,
                     events=False, stop_on_convergence=True,
                     batch_seeds=1, topology=None):
        from .array_engine import _MAX_RANK

        declared = protocol.consumes_randomness()
        if declared is True or n >= _MAX_RANK:
            # Same conditions as ArraySimulator._select_mode: declared rng
            # consumption, or a population beyond the packed-rank capacity
            # of the table entries, lands on the object fallback — exact
            # but no faster than the reference, so `auto` must not prefer
            # it on a 12x hint.
            reason = (
                "transition consumes randomness; state pairs cannot be "
                "tabulated, so runs take the object fallback path"
                if declared is True
                else f"n >= {_MAX_RANK} exceeds the packed-table rank "
                "capacity, so runs take the object fallback path"
            )
            return BackendCapability(
                supported=True,
                exactness="trajectory",
                supports_series=True,
                throughput_hint=self.HINT_OBJECT_FALLBACK,
                reason=reason,
            )
        return BackendCapability(
            supported=True,
            exactness="trajectory",
            supports_series=True,
            throughput_hint=(
                self.HINT_TABULATED if declared is False else self.HINT_UNKNOWN
            ),
        )

    def create(self, protocol, *, cache=None, **kwargs):
        from .array_engine import ArraySimulator

        return ArraySimulator(protocol, cache=cache, **kwargs)


class ArrayBatchedBackend(Backend):
    """The replica-batched array engine: whole seed groups in lockstep.

    One :class:`~repro.core.batched_engine.BatchedArraySimulator` advances
    every seed of a study cell group together — one shared tabulation, a
    ``(seeds, n)`` code matrix, per-step work paid once per group — while
    each lane stays bit-identical to a serial array run with its seed.
    The throughput hint therefore *scales with the group*: for one seed
    the lockstep machinery is pure overhead (``auto`` must prefer the
    plain array engine), from a handful of seeds up the amortization wins.

    Mid-run perturbation events are unsupported: the scenario appliers
    rewrite one population between segments, and the batched engine has
    no segmented-run surface.  Declared rng consumption and populations
    beyond the packed-rank capacity fall back to per-seed serial runs
    inside the engine, so ``auto`` must not route them here.
    """

    name = "array-batched"
    uses_cache = True
    batches = True

    #: Seed-group size from which lockstep amortization clearly wins.
    MIN_BATCH = 4
    #: Hints: winning group sizes vs single-seed lockstep overhead.
    HINT_BATCHED = 18.0
    HINT_SINGLE = 0.5

    def capabilities(self, protocol, workload, n, *, series=False,
                     events=False, stop_on_convergence=True,
                     batch_seeds=1, topology=None):
        from .array_engine import _MAX_RANK

        if events:
            return BackendCapability(
                supported=False,
                supports_events=False,
                reason=(
                    "the batched engine advances many replicas in "
                    "lockstep; mid-run perturbation events need a "
                    "single-population segmented run"
                ),
            )
        declared = protocol.consumes_randomness()
        if declared is True or n >= _MAX_RANK:
            reason = (
                "transition consumes randomness; lanes would demote to "
                "per-seed object runs, losing the lockstep amortization"
                if declared is True
                else f"n >= {_MAX_RANK} exceeds the packed-table rank "
                "capacity; lanes would fall back to per-seed runs"
            )
            return BackendCapability(supported=False, reason=reason)
        return BackendCapability(
            supported=True,
            exactness="trajectory",
            supports_series=True,
            supports_events=False,
            throughput_hint=(
                self.HINT_BATCHED
                if batch_seeds >= self.MIN_BATCH
                else self.HINT_SINGLE
            ),
        )

    def create(self, protocol, *, cache=None, **kwargs):
        # A single cell routed here explicitly still runs bit-identically:
        # the serial array engine is the one-lane special case.
        from .array_engine import ArraySimulator

        return ArraySimulator(protocol, cache=cache, **kwargs)

    def create_batch(self, protocols, *, cache=None, **kwargs):
        from .batched_engine import BatchedArraySimulator

        return BatchedArraySimulator(protocols, cache=cache, **kwargs)


class ArrayJitBackend(Backend):
    """The numba-compiled array engine variant (optional dependency).

    Capability negotiation is where the optional dependency is gated:
    when numba is importable the backend serves exactly the cells the
    plain array engine serves, with compiled chunk loops; when it is not,
    every probe answers ``supported=False`` with the reason, ``auto``
    resolution silently skips it, and no ``ImportError`` ever escapes —
    an explicit ``engine="array-jit"`` request fails with the backend's
    reason through the ordinary unsupported-cell path.
    """

    name = "array-jit"
    uses_cache = True

    HINT_JIT = 20.0

    def capabilities(self, protocol, workload, n, *, series=False,
                     events=False, stop_on_convergence=True,
                     batch_seeds=1, topology=None):
        from .jit_engine import numba_unavailable_reason

        reason = numba_unavailable_reason()
        if reason is not None:
            return BackendCapability(supported=False, reason=reason)
        from .array_engine import _MAX_RANK

        declared = protocol.consumes_randomness()
        if declared is True or n >= _MAX_RANK:
            return BackendCapability(
                supported=False,
                reason=(
                    "the compiled chunk loop needs tabulated transitions; "
                    "this cell would run on the object fallback path"
                ),
            )
        return BackendCapability(
            supported=True,
            exactness="trajectory",
            supports_series=True,
            throughput_hint=self.HINT_JIT,
        )

    def create(self, protocol, *, cache=None, **kwargs):
        from .jit_engine import JitArraySimulator

        return JitArraySimulator(protocol, cache=cache, **kwargs)


class AggregateBackend(Backend):
    """The exact event-driven engine on group counts (paper-scale runs).

    Only simulates ``SpaceEfficientRanking`` from the Figure 3 start (the
    event decomposition is hand-derived per protocol), evolves counts
    rather than agents (exact in distribution, not per-trajectory), and
    records no metric series.  These constraints used to be special-cased
    in ``ExperimentSpec.validate``; they are this backend's capability
    answer now.
    """

    name = "aggregate"
    kind = "aggregate"

    #: Protocols with a hand-derived event decomposition.
    SUPPORTED_PROTOCOLS = ("space-efficient-ranking",)
    #: The decomposition starts from the leader-already-elected state.
    SUPPORTED_WORKLOADS = ("figure3",)

    def capabilities(self, protocol, workload, n, *, series=False,
                     events=False, stop_on_convergence=True,
                     batch_seeds=1, topology=None):
        if topology is not None:
            return BackendCapability(
                supported=False,
                supports_series=False,
                supports_events=False,
                supports_topology=False,
                reason=(
                    "the aggregate engine's event decomposition assumes "
                    "the uniform scheduler on the complete graph; a "
                    f"restricted topology ({topology!r}) needs an "
                    "agent-level pair stream"
                ),
            )
        if events:
            return BackendCapability(
                supported=False,
                supports_series=False,
                supports_events=False,
                reason=(
                    "the aggregate engine evolves group counts, not "
                    "agents; agent-level mid-run events cannot be applied"
                ),
            )
        if protocol.name not in self.SUPPORTED_PROTOCOLS:
            return BackendCapability(
                supported=False,
                reason=(
                    "the aggregate engine only simulates "
                    "space-efficient-ranking (its event decomposition is "
                    "hand-derived per protocol)"
                ),
            )
        if workload not in self.SUPPORTED_WORKLOADS:
            return BackendCapability(
                supported=False,
                reason="the aggregate engine starts from the figure3 workload",
            )
        if series:
            return BackendCapability(
                supported=False,
                supports_series=False,
                reason="the aggregate engine does not record metric series",
            )
        return BackendCapability(
            supported=True,
            exactness="distribution",
            supports_series=False,
            supports_events=False,
            throughput_hint=200.0,
        )


class GroupCountBackend(Backend):
    """The codec-derived exact engine on state counts (scaling sweeps).

    Where the aggregate engine needs a hand-derived event decomposition
    per protocol, this backend serves *every* deterministic protocol: the
    group engine tabulates productive ordered transitions through the
    protocol's own :func:`~repro.core.codec.evaluate_pair` and runs the
    exact no-op-skipping event process on a state-count vector.  The
    capability answer is negotiated from the same declarations the codec
    layer uses — :meth:`~repro.core.protocol.PopulationProtocol
    .consumes_randomness` must be a declared ``False`` (lumping the agent
    process to counts is only exact when the transition is a function of
    the two states), and the protocol must answer
    :meth:`~repro.core.protocol.PopulationProtocol.count_goal` (the
    convergence observable the engine tracks over counts).

    The throughput hint is population-aware: per-event cost is dominated
    by the count-vector width, not ``n``, so for a compact declared state
    space at large ``n`` the engine is orders of magnitude faster than
    any agent-level path — but at small ``n`` the agent engines win, and
    for protocols with large or undeclared state spaces the tabulation
    cost is real, so the hint stays below the agent engines and ``auto``
    only routes to the group engine when it is clearly the right tool.
    """

    name = "group"
    kind = "count"

    #: Declared state spaces at or below this size tabulate in one burst.
    COMPACT_STATE_SPACE = 512
    #: Population size from which count-level simulation clearly wins.
    LARGE_POPULATION = 65536
    #: Hints: clearly-winning cells vs "capable, but let agent engines win".
    HINT_COMPACT_LARGE_N = 64.0
    HINT_DEFAULT = 0.9

    def capabilities(self, protocol, workload, n, *, series=False,
                     events=False, stop_on_convergence=True,
                     batch_seeds=1, topology=None):
        if topology is not None:
            return BackendCapability(
                supported=False,
                supports_series=False,
                supports_events=False,
                supports_topology=False,
                reason=(
                    "lumping agents to state counts is only exact under "
                    "the complete-graph uniform scheduler; a restricted "
                    f"topology ({topology!r}) makes agent adjacency "
                    "trajectory-relevant"
                ),
            )
        if events:
            return BackendCapability(
                supported=False,
                supports_series=False,
                supports_events=False,
                reason=(
                    "the group-count engine evolves state counts, not "
                    "agents; agent-level mid-run events cannot be applied"
                ),
            )
        if series:
            return BackendCapability(
                supported=False,
                supports_series=False,
                supports_events=False,
                reason="the group-count engine does not record metric series",
            )
        if protocol.consumes_randomness() is not False:
            return BackendCapability(
                supported=False,
                supports_events=False,
                reason=(
                    "the count process is only exactly lumped for "
                    "deterministic transitions; the protocol does not "
                    "declare consumes_randomness() = False"
                ),
            )
        if protocol.count_goal(None) is None:
            return BackendCapability(
                supported=False,
                supports_events=False,
                reason=(
                    "the protocol declares no count_goal(); convergence "
                    "cannot be observed over state counts"
                ),
            )
        size = protocol.state_space_size()
        compact = size is not None and size <= self.COMPACT_STATE_SPACE
        hint = (
            self.HINT_COMPACT_LARGE_N
            if compact and n >= self.LARGE_POPULATION
            else self.HINT_DEFAULT
        )
        return BackendCapability(
            supported=True,
            exactness="distribution",
            supports_series=False,
            supports_events=False,
            throughput_hint=hint,
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Add a backend to the registry (insertion order is tie-break order).

    Like the experiment layer's protocol/workload registries, the registry
    is per-process module state: parallel studies run cells in *spawned*
    worker processes that re-import :mod:`repro`, so a custom backend must
    be registered at import time of a module those workers also import
    (e.g. a package ``__init__``), not ad hoc in a script — otherwise the
    workers resolve against the built-in backends only and a parallel run
    can diverge from a serial one.
    """
    if not replace and backend.name in _REGISTRY:
        raise ExperimentError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """The registered backend called ``name``."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ExperimentError(
            f"unknown engine {name!r}; expected one of {engine_choices()}"
        )
    return backend


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_REGISTRY)


def engine_choices() -> Tuple[str, ...]:
    """Valid ``engine=`` values: every backend name plus ``"auto"``."""
    return backend_names() + (AUTO_ENGINE,)


def resolve_backend(
    protocol: PopulationProtocol,
    workload: str,
    n: int,
    *,
    engine: str = AUTO_ENGINE,
    series: bool = False,
    events: bool = False,
    stop_on_convergence: bool = True,
    batch_seeds: int = 1,
    kinds: Optional[Sequence[str]] = None,
    exactness: Optional[str] = None,
    topology: Optional[str] = None,
) -> Tuple[Backend, BackendCapability]:
    """Resolve an engine request for one cell into a capable backend.

    A concrete ``engine`` name returns that backend — raising
    :class:`~repro.core.errors.ExperimentError` with the backend's reason
    when it cannot run the cell.  ``engine="auto"`` returns the supported
    backend with the highest throughput hint (registration order breaks
    ties), restricted to the given ``kinds`` when provided.

    ``exactness`` pins the resolution to one exactness class (exact
    equality on :attr:`BackendCapability.exactness`): a concrete engine of
    a different class is rejected, and ``"auto"`` only considers backends
    of that class.  A cell that needs per-trajectory reproducibility pins
    ``"trajectory"``; a distribution-level scaling sweep pins
    ``"distribution"`` so the count engines compete on speed alone.

    ``topology`` is the restricted-topology family name (``None`` for the
    complete graph): backends that cannot inject a graph-restricted pair
    stream answer unsupported, so ``"auto"`` routes restricted cells to
    the agent-level engines.
    """
    if engine != AUTO_ENGINE:
        backend = get_backend(engine)
        if kinds is not None and backend.kind not in kinds:
            raise ExperimentError(
                f"engine {engine!r} (kind={backend.kind!r}) cannot serve "
                f"this context (expected kind in {tuple(kinds)})"
            )
        capability = backend.capabilities(
            protocol, workload, n, series=series, events=events,
            stop_on_convergence=stop_on_convergence,
            batch_seeds=batch_seeds, topology=topology,
        )
        if not capability.supported:
            raise ExperimentError(
                f"engine {engine!r} cannot run protocol "
                f"{protocol.name!r} with workload {workload!r}: "
                f"{capability.reason}"
            )
        if exactness is not None and capability.exactness != exactness:
            raise ExperimentError(
                f"engine {engine!r} has exactness "
                f"{capability.exactness!r} for this cell, but the spec "
                f"requires {exactness!r}"
            )
        return backend, capability

    best: Optional[Tuple[Backend, BackendCapability]] = None
    for backend in _REGISTRY.values():
        if kinds is not None and backend.kind not in kinds:
            continue
        capability = backend.capabilities(
            protocol, workload, n, series=series, events=events,
            stop_on_convergence=stop_on_convergence,
            batch_seeds=batch_seeds, topology=topology,
        )
        if not capability.supported:
            continue
        if exactness is not None and capability.exactness != exactness:
            continue
        if best is None or capability.throughput_hint > best[1].throughput_hint:
            best = (backend, capability)
    if best is None:
        requirement = (
            f" with exactness {exactness!r}" if exactness is not None else ""
        )
        raise ExperimentError(
            f"no registered backend supports protocol {protocol.name!r} "
            f"with workload {workload!r}{requirement}"
        )
    return best


def capability_matrix(
    protocol: PopulationProtocol,
    workload: str,
    n: int,
    *,
    series: bool = False,
    events: bool = False,
    batch_seeds: int = 1,
    topology: Optional[str] = None,
) -> Dict[str, BackendCapability]:
    """Every backend's capability answer for one cell (diagnostics/CLI)."""
    return {
        name: backend.capabilities(
            protocol, workload, n, series=series, events=events,
            batch_seeds=batch_seeds, topology=topology,
        )
        for name, backend in _REGISTRY.items()
    }


register_backend(ReferenceBackend())
register_backend(ArrayBackend())
register_backend(ArrayBatchedBackend())
register_backend(ArrayJitBackend())
register_backend(AggregateBackend())
register_backend(GroupCountBackend())
