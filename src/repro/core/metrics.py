"""Metric collection for simulations.

Experiments such as the paper's Figure 2 need time series of configuration
statistics ("number of ranked agents", "average phase of unranked agents")
sampled on a fixed interaction schedule.  :class:`MetricsCollector` owns a
set of named probes, a sampling interval and the recorded series; the
simulator calls :meth:`MetricsCollector.maybe_record` after every interaction
and the collector decides whether a snapshot is due.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .configuration import Configuration

__all__ = ["MetricsCollector", "TimeSeries", "standard_ranking_probes"]

Probe = Callable[[Configuration], float]


@dataclass
class TimeSeries:
    """A recorded metric: interaction counts and the sampled values."""

    name: str
    interactions: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, interaction: int, value: float) -> None:
        """Record ``value`` observed after ``interaction`` interactions."""
        self.interactions.append(interaction)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> Optional[float]:
        """The most recent value, or ``None`` if nothing was recorded."""
        return self.values[-1] if self.values else None

    def as_rows(self) -> List[tuple]:
        """Return ``(interaction, value)`` rows, e.g. for CSV export."""
        return list(zip(self.interactions, self.values))


class MetricsCollector:
    """Samples configuration probes on a fixed interaction schedule.

    Parameters
    ----------
    probes:
        Mapping from series name to a probe function evaluated on the
        configuration at sampling time.
    interval:
        Record a snapshot every ``interval`` interactions.  The snapshot at
        interaction 0 (the initial configuration) is always recorded when the
        simulator starts.
    """

    def __init__(self, probes: Dict[str, Probe], interval: int):
        if interval < 1:
            raise ValueError(f"interval must be positive, got {interval}")
        self._probes = dict(probes)
        self._interval = interval
        self._series: Dict[str, TimeSeries] = {
            name: TimeSeries(name) for name in self._probes
        }
        self._next_due = 0

    @property
    def interval(self) -> int:
        """The sampling interval in interactions."""
        return self._interval

    @property
    def next_due(self) -> int:
        """The next interaction count at which a snapshot is due.

        Chunked engines use this to split their batches so snapshots land on
        exactly the interactions the per-step ``maybe_record`` protocol of
        the reference simulator would record.
        """
        return self._next_due

    @property
    def series(self) -> Dict[str, TimeSeries]:
        """The recorded time series keyed by probe name."""
        return self._series

    def record(self, interaction: int, configuration: Configuration) -> None:
        """Force a snapshot at ``interaction`` regardless of the schedule."""
        for name, probe in self._probes.items():
            self._series[name].append(interaction, float(probe(configuration)))
        self._next_due = interaction + self._interval

    def maybe_record(self, interaction: int, configuration: Configuration) -> bool:
        """Record a snapshot if one is due; return whether it was recorded."""
        if interaction < self._next_due:
            return False
        self.record(interaction, configuration)
        return True

    def get(self, name: str) -> TimeSeries:
        """Return the series recorded under ``name``."""
        return self._series[name]


def standard_ranking_probes() -> Dict[str, Probe]:
    """Probes used by the ranking experiments (Figure 2 of the paper).

    Returns
    -------
    dict
        ``ranked_agents``: number of agents holding a rank.
        ``average_phase``: mean phase counter of unranked phase agents.
        ``duplicate_ranks``: number of distinct ranks held more than once.
    """
    return {
        "ranked_agents": lambda config: float(config.ranked_count()),
        "average_phase": lambda config: float(config.average_phase()),
        "duplicate_ranks": lambda config: float(len(config.duplicate_ranks())),
    }


def merge_series(series: Sequence[TimeSeries]) -> TimeSeries:
    """Concatenate several series that share a name (for chunked runs)."""
    if not series:
        raise ValueError("need at least one series to merge")
    merged = TimeSeries(series[0].name)
    for part in series:
        merged.interactions.extend(part.interactions)
        merged.values.extend(part.values)
    return merged
