"""``ArraySimulator`` — vectorized agent-level simulation on encoded states.

The reference :class:`~repro.core.simulation.Simulator` executes one
interaction per Python call, which caps it at a few hundred thousand
interactions per second and makes the paper's ``Θ(n² log n)``-interaction
runs infeasible beyond ``n ≈ 256``.  This module simulates the *same*
process — the uniform random scheduler applied to the protocol's transition
function — on dense state codes (:class:`~repro.core.codec.StateCodec`),
consuming sampled pairs in chunks.

Exactness
---------
Sequential semantics are preserved exactly, not approximately.  The engine
exploits one fact: a transition only reads and writes the states of its two
participants, so interactions that provably change nothing commute with
everything.  Each chunk is processed in two steps:

1. **Optimistic bulk no-op elimination.**  The outcome of every pair is
   probed against the compiled transition tables *without* evaluating
   unknown entries.  The *volatile* agent set is read off the probes:
   agents some pair currently writes, plus both agents of every
   untabulated pair.  Pairs touching no volatile agent are *tentatively*
   retired as no-ops, with their (exact) result flags deferred.  Late in a
   run almost every interaction retires here, in a handful of numpy
   operations per chunk.
2. **Validated ordered walk.**  The remaining pairs execute one at a time,
   in their original order, as scalar table lookups on the live code list —
   a dictionary probe and a few integer operations per interaction, an
   order of magnitude less than a full Python-object transition.  The walk
   also *validates* the elimination: if a pair writes an agent assumed
   stable (possible only when an operand written earlier in the chunk
   flipped the pair's behavior), that agent joins the volatile set and its
   later tentatively-retired pairs are merged back into the walk at their
   original positions.  A pair that stays retired therefore provably saw
   its operands keep their chunk-start states — its probed no-op outcome
   is its true outcome.

Determinism and same-seed equality
----------------------------------
The engine refills its pair buffer with
``UniformPairScheduler.sample_chunk(chunk_size)``, issuing exactly the same
generator calls as the reference scheduler's internal refill.  For protocols
whose transition is deterministic given the two states (both of the paper's
headline protocols qualify — synthetic coins are deterministic togglings), a
same-seed ``ArraySimulator`` run therefore visits exactly the same
configuration trajectory as the reference ``Simulator``.  The array
engine's *default* convergence-check cadence is coarser than the
reference's (see ``convergence_interval`` below), so to reproduce the
reference's exact stopping interaction, pass the same explicit
``convergence_interval`` to both engines.

Engine modes
------------
``dense``
    The reachable state space closed under the transition function fits in
    ``max_dense_states`` states; complete ``(S × S)`` numpy tables are
    precompiled (:func:`~repro.core.codec.compile_dense_tables`) and chunk
    probes are plain fancy indexing.  The one-way epidemic (4 states) runs
    here.
``lazy``
    The concrete state space is too large to enumerate eagerly
    (``StableRanking`` has ``n + Θ(log² n)`` states with large constants),
    so table entries are tabulated on first use and cached — the
    vectorized-kernel fallback path.  Still exact and deterministic; share
    an :class:`EngineCache` across runs of equivalent protocols to amortize
    the tabulation.
``object``
    The transition consumes randomness (the GS leader-election substrate
    draws random tags), so state pairs cannot be cached at all.  The engine
    degrades to an in-order object loop — semantically the reference
    simulator without its per-step bookkeeping.  Selected automatically,
    also mid-run if a lazily tabulated protocol first consumes randomness
    deep into a trajectory (the walk order makes the hand-over exact).

On top of the two table modes, a protocol may provide a *struct-of-arrays
vectorized kernel* (:mod:`repro.core.soa`, enabled with
``use_soa_kernel=True``, the default): the kernel consumes exact chunk
prefixes with column operations — coin-toggle parity, counter chains —
and hands every pair it cannot prove back to the ordered walk below.
This lifts the write-heavy mid-run regime of ``StableRanking`` (where
nearly every pair toggles a synthetic coin and nothing retires in bulk)
from the walk's ~0.5 µs/interaction to a few hundredths, while keeping
bit-exact sequential semantics.  See ``docs/engines.md`` for the full
mode ladder.

Protocol-level *diagnostic* counters (e.g. ``RankingPlus.errors_detected``)
are perturbed by tabulation probes and, in the table modes, do not reflect
the simulated trajectory; all counters in ``SimulationResult`` are exact.
"""

from __future__ import annotations

import warnings
from itertools import islice
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .codec import (
    RAISING_RNG,
    DenseTransitionTables,
    StateCodec,
    compile_dense_tables,
)
from .configuration import Configuration
from .errors import (
    CodecError,
    RandomnessConsumed,
    SimulationLimitExceeded,
    StateSpaceTooLarge,
)
from .metrics import MetricsCollector
from .probe_table import ProbeClassTable
from .protocol import PopulationProtocol
from .rng import RandomState
from .scheduler import UniformPairScheduler
from .simulation import SimulationResult, Simulator, segmented_run
from .soa import ColumnStore, VectorizedKernel

__all__ = ["ArraySimulator", "EngineCache", "make_simulator", "ENGINE_NAMES"]

#: Engine names understood by :func:`make_simulator`.
ENGINE_NAMES = ("reference", "array")

# Bit layout of packed table entries: successor codes use 21 bits each, the
# assigned rank 17 bits, then one bit each for the changed and reset flags.
# The limits are enforced at construction time.  -1 marks "not tabulated".
_CODE_BITS = 21
_RANK_BITS = 17
_MAX_CODES = 1 << _CODE_BITS
_MAX_RANK = 1 << _RANK_BITS
_CODE_MASK = _MAX_CODES - 1
_RANK_MASK = _MAX_RANK - 1
_RANK_SHIFT = 2 * _CODE_BITS
_CHANGED_SHIFT = _RANK_SHIFT + _RANK_BITS
_RESET_SHIFT = _CHANGED_SHIFT + 1
_CHANGED_BIT = 1 << _CHANGED_SHIFT
_RESET_BIT = 1 << _RESET_SHIFT
_RANK_FIELD = _RANK_MASK << _RANK_SHIFT
#: Any bit at or above the rank field: pairs without any of these are inert.
_FLAG_FIELD = _RANK_FIELD | _CHANGED_BIT | _RESET_BIT

def _pack_outcome(outcome) -> int:
    """Pack a :class:`~repro.core.codec.PairOutcome` into one int64."""
    return (
        outcome.next_initiator
        | (outcome.next_responder << _CODE_BITS)
        | (outcome.rank_assigned << _RANK_SHIFT)
        | (int(outcome.changed) << _CHANGED_SHIFT)
        | (int(outcome.reset_triggered) << _RESET_SHIFT)
    )


# Probe-class bits: what an interaction between two states does, compressed
# to one byte for the chunk-wide volatile-set probe.  -1 (all bits set, via
# two's complement) marks unknown entries, which thereby conservatively read
# as "writes both agents and carries flags".
_CLS_WRITES_U = 1
_CLS_WRITES_V = 2
_CLS_FLAGGED = 4


def _class_of(packed: int, a: int, b: int) -> int:
    """Probe class of a packed outcome for the state pair ``(a, b)``."""
    cls = 0
    if packed & _CODE_MASK != a:
        cls |= _CLS_WRITES_U
    if (packed >> _CODE_BITS) & _CODE_MASK != b:
        cls |= _CLS_WRITES_V
    if packed & _FLAG_FIELD:
        cls |= _CLS_FLAGGED
    return cls


class EngineCache:
    """Tabulation state reusable across runs of *equivalent* protocols.

    A ``StableRanking(128)`` run visits far more distinct state pairs than a
    single trajectory can amortize, so repeated runs (benchmark rounds,
    experiment sweeps) should share the tabulation.  Pass one cache instance
    to every :class:`ArraySimulator` built for protocols with identical
    parameters — the transition function must be the same function of the
    two states, which holds exactly when the protocol type and all
    constructor arguments match.  Sharing across *different*
    parameterizations silently corrupts results; nothing can check this for
    you.

    With ``persist_dir`` set, the cache also binds to the on-disk
    :mod:`~repro.core.table_store`: the first simulator construction
    merges every readable artifact under the protocol's content address
    (:meth:`load_persisted`, called from the engines' mode selection),
    and :meth:`spill` persists whatever this process newly tabulated.
    Persistence only moves tabulation work across processes — trajectories
    are bit-identical with or without it.
    """

    __slots__ = (
        "codec", "pair_cache", "probe_table", "dense_tables", "mode",
        "soa_kernel", "soa_columns",
        "persist_dir", "_store_entry", "_spill_mark", "_persist_failed",
    )

    def __init__(self, persist_dir=None):
        self.codec = StateCodec()
        self.pair_cache: Dict[int, int] = {}
        #: Pair-code → probe-class byte map; a dense (S × S) int8 matrix
        #: while the codec is small, an open-addressed hash table beyond
        #: :data:`~repro.core.probe_table.DENSE_STATE_LIMIT` states — so
        #: arbitrarily large state spaces stay on the warm probe path.
        self.probe_table = ProbeClassTable(key_bits=_CODE_BITS)
        self.dense_tables: Optional[DenseTransitionTables] = None
        #: Resolved engine mode, or ``None`` until the first simulator decides.
        self.mode: Optional[str] = None
        #: Shared protocol-provided SoA kernel and its column store (both
        #: keyed on this cache's codec, so sharing follows the same
        #: equal-parameterization contract as the pair cache; the store's
        #: live-population binding is refreshed per chunk by each engine).
        self.soa_kernel = None
        self.soa_columns = None
        #: Root directory of the persistent table store, or ``None`` for a
        #: purely in-memory cache (the historical behaviour).
        self.persist_dir = persist_dir
        self._store_entry = None
        #: Pair-cache length at the last load/spill: everything beyond it
        #: is "newly tabulated by this process" (dict order is insertion
        #: order, and tabulation only ever appends).
        self._spill_mark = 0
        self._persist_failed = False

    # ------------------------------------------------------------------
    # Persistent table store
    # ------------------------------------------------------------------
    def load_persisted(self, protocol: "PopulationProtocol") -> None:
        """Bind to the persistent store and merge its artifacts once.

        Called by the engines' mode selection right before the first
        codec interning, so a dense artifact can restore the compiled
        tables (identity code mapping into the still-empty codec) and
        pair spills can seed the lazy tabulation.  Any store failure
        warns and permanently disables persistence for this cache — the
        run continues cold, never poisoned.
        """
        if (
            self.persist_dir is None
            or self._persist_failed
            or self._store_entry is not None
        ):
            return
        from .table_store import TableStore, record_loaded_pairs

        try:
            entry = TableStore(self.persist_dir).entry_for(protocol)
        except Exception as error:
            self._persist_failed = True
            warnings.warn(f"table store disabled: {error}")
            return
        self._store_entry = entry
        codec = self.codec
        try:
            if self.mode is None and entry.mode_hint() == "lazy":
                # Skip the doomed dense enumeration attempt a previous
                # process already paid for.  ("dense" hints are not
                # forced: the dense artifact below carries the proof.)
                self.mode = "lazy"
            if codec.size == 0 and self.dense_tables is None:
                loaded = entry.load_dense()
                if loaded is not None:
                    states, arrays = loaded
                    for state in states:
                        codec.encode(state)
                    self.dense_tables = DenseTransitionTables(
                        next_initiator=arrays["next_initiator"],
                        next_responder=arrays["next_responder"],
                        changed=arrays["changed"],
                        rank=arrays["rank"],
                        reset=arrays["reset"],
                    )
            merged: Dict[int, int] = {}
            for states, keys, vals in entry.load_pair_spills():
                # Remap the spill's private codes onto the live codec.
                mapping = np.empty(len(states), dtype=np.int64)
                for spill_code, state in enumerate(states):
                    mapping[spill_code] = codec.encode(state)
                keys = np.asarray(keys, dtype=np.int64)
                vals = np.asarray(vals, dtype=np.int64)
                new_keys = (
                    (mapping[keys >> _CODE_BITS] << _CODE_BITS)
                    | mapping[keys & _CODE_MASK]
                )
                flags = vals & ~np.int64(
                    (_CODE_MASK << _CODE_BITS) | _CODE_MASK
                )
                new_vals = (
                    mapping[vals & _CODE_MASK]
                    | (mapping[(vals >> _CODE_BITS) & _CODE_MASK]
                       << _CODE_BITS)
                    | flags
                )
                merged.update(zip(new_keys.tolist(), new_vals.tolist()))
            if codec.size > _MAX_CODES:
                raise CodecError(
                    f"persisted spills exceed the {_MAX_CODES} "
                    f"distinct-state capacity"
                )
            pair_cache = self.pair_cache
            fresh = {
                key: value
                for key, value in merged.items()
                if key not in pair_cache
            }
            if fresh:
                pair_cache.update(fresh)
                keys = np.fromiter(fresh.keys(), np.int64, len(fresh))
                vals = np.fromiter(fresh.values(), np.int64, len(fresh))
                cu = keys >> _CODE_BITS
                cv = keys & _CODE_MASK
                classes = (
                    ((vals & _CODE_MASK) != cu) * _CLS_WRITES_U
                    | (((vals >> _CODE_BITS) & _CODE_MASK) != cv)
                    * _CLS_WRITES_V
                    | ((vals & _FLAG_FIELD) != 0) * _CLS_FLAGGED
                ).astype(np.int8)
                table = self.probe_table
                table.ensure_capacity(codec.size)
                table.bulk_set(cu, cv, classes)
                record_loaded_pairs(len(fresh))
        except Exception as error:
            self._persist_failed = True
            self._store_entry = None
            warnings.warn(
                f"table store load failed ({type(error).__name__}: "
                f"{error}); continuing cold"
            )
        self._spill_mark = len(self.pair_cache)

    def spill(self) -> int:
        """Persist what this process newly tabulated; returns pairs written.

        Call on finalize (the study layer does, after each executed
        unit).  Dense tables are written once per entry; lazily tabulated
        pairs beyond the last load/spill watermark become one new
        immutable spill artifact.  Failures warn and disable persistence
        — results are never affected.
        """
        entry = self._store_entry
        if entry is None or self._persist_failed:
            return 0
        written = 0
        try:
            if self.mode in ("dense", "lazy"):
                entry.save_mode_hint(self.mode)
            if self.dense_tables is not None:
                tables = self.dense_tables
                states = [
                    self.codec.prototype(code)
                    for code in range(tables.size)
                ]
                entry.write_dense(
                    states,
                    {
                        "next_initiator": tables.next_initiator,
                        "next_responder": tables.next_responder,
                        "changed": tables.changed,
                        "rank": tables.rank,
                        "reset": tables.reset,
                    },
                )
            count = len(self.pair_cache) - self._spill_mark
            if count > 0:
                items = list(
                    islice(self.pair_cache.items(), self._spill_mark, None)
                )
                keys = np.fromiter(
                    (key for key, _ in items), np.int64, len(items)
                )
                vals = np.fromiter(
                    (value for _, value in items), np.int64, len(items)
                )
                states = [
                    self.codec.prototype(code)
                    for code in range(self.codec.size)
                ]
                if entry.write_pair_spill(states, keys, vals):
                    written = len(items)
                self._spill_mark = len(self.pair_cache)
        except Exception as error:
            self._persist_failed = True
            warnings.warn(
                f"table store spill failed ({type(error).__name__}: "
                f"{error}); continuing without persistence"
            )
        return written


class _DenseKernel:
    """Chunk probes backed by precompiled complete ``(S × S)`` tables."""

    def __init__(self, tables: DenseTransitionTables):
        self._tables = tables
        size = tables.size
        packed = (
            tables.next_initiator.astype(np.int64)
            | (tables.next_responder.astype(np.int64) << _CODE_BITS)
            | (tables.rank.astype(np.int64) << _RANK_SHIFT)
            | (tables.changed.astype(np.int64) << _CHANGED_SHIFT)
            | (tables.reset.astype(np.int64) << _RESET_SHIFT)
        )
        codes = np.arange(size, dtype=np.int64)
        keys = (codes[:, None] << _CODE_BITS) | codes[None, :]
        #: Complete packed-outcome matrix, kept for the batched engine's
        #: lockstep gather (``packed.ravel()[a * size + b]``).
        self.packed = packed
        #: Scalar-probe view of the same tables, used by the ordered walk.
        self.pair_dict: Dict[int, int] = dict(
            zip(keys.ravel().tolist(), packed.ravel().tolist())
        )
        classes = np.zeros((size, size), dtype=np.int8)
        classes |= (tables.next_initiator != codes[:, None]) * _CLS_WRITES_U
        classes |= (tables.next_responder != codes[None, :]) * _CLS_WRITES_V
        classes |= ((packed & _FLAG_FIELD) != 0) * _CLS_FLAGGED
        self._classes = classes

    @property
    def tables(self) -> DenseTransitionTables:
        return self._tables

    @property
    def cached_pairs(self) -> int:
        """Number of tabulated state pairs (diagnostics)."""
        return len(self.pair_dict)

    def probe_class(self, cu: np.ndarray, cv: np.ndarray) -> np.ndarray:
        """Probe-class bytes for a batch of state pairs (complete tables)."""
        return self._classes[cu, cv]

    def evaluate_packed(self, key: int) -> int:  # pragma: no cover - defensive
        raise KeyError(f"dense tables are complete but miss key {key}")


class _LazyKernel:
    """Chunk probes backed by an on-demand pair cache.

    Full outcomes are packed into one int64 per state pair for the walk's
    scalar dictionary probes; a parallel int8 ``(S × S)`` probe-class table
    answers the chunk-wide "does this pair write / carry flags?" question
    with a single fancy-index gather.  Batch probes never tabulate — unknown
    pairs read as conservative "writes both" and are resolved by the ordered
    walk, which sees the settled codes and calls :meth:`evaluate_packed`.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        codec: StateCodec,
        cache: EngineCache,
    ):
        self._protocol = protocol
        self._codec = codec
        self._cache = cache
        self.pair_dict: Dict[int, int] = cache.pair_cache
        #: Per-state-type capability cache: True when the type supports the
        #: inlined copy()/as_tuple() fast path of :meth:`evaluate_packed`.
        self._fast_types: Dict[type, bool] = {}
        cache.probe_table.ensure_capacity(max(codec.size, 1))

    def _is_fast_type(self, state_type: type) -> bool:
        supported = self._fast_types.get(state_type)
        if supported is None:
            supported = hasattr(state_type, "copy") and hasattr(
                state_type, "as_tuple"
            )
            self._fast_types[state_type] = supported
        return supported

    @property
    def cached_pairs(self) -> int:
        """Number of tabulated state pairs (diagnostics)."""
        return len(self.pair_dict)

    def evaluate_packed(self, key: int) -> int:
        """Tabulate one state pair and return its packed outcome.

        Functionally :func:`~repro.core.codec.evaluate_pair` plus packing,
        but inlined against the codec internals: this is the dominant cost
        of every run that explores new state pairs, so the wrapper layers
        (dataclass result, per-field copies through generic helpers) are
        flattened away.

        Raises :class:`RandomnessConsumed` if the transition touches the
        rng — the engine then demotes itself to the object path.
        """
        a = key >> _CODE_BITS
        b = key & _CODE_MASK
        codec = self._codec
        prototypes = codec._prototypes
        proto_a = prototypes[a]
        proto_b = prototypes[b]
        if self._is_fast_type(type(proto_a)) and self._is_fast_type(type(proto_b)):
            interned = codec._codes
            initiator = proto_a.copy()
            responder = proto_b.copy()
            result = self._protocol.transition(initiator, responder, RAISING_RNG)
            next_a = interned.get((type(initiator), initiator.as_tuple()))
            if next_a is None:
                next_a = codec.encode(initiator)
            next_b = interned.get((type(responder), responder.as_tuple()))
            if next_b is None:
                next_b = codec.encode(responder)
        else:
            # States without copy()/as_tuple() (plain dataclasses) take the
            # generic, slightly slower path.
            initiator = codec.materialize(a)
            responder = codec.materialize(b)
            result = self._protocol.transition(initiator, responder, RAISING_RNG)
            next_a = codec.encode(initiator)
            next_b = codec.encode(responder)
        if codec.size > _MAX_CODES:
            raise CodecError(
                f"protocol {self._protocol.name} exceeded the array engine's "
                f"{_MAX_CODES} distinct-state capacity"
            )
        rank = result.rank_assigned
        if rank is None:
            rank = 0
        elif rank >= _MAX_RANK:
            raise CodecError(
                f"rank {rank} exceeds the array engine's packed-rank "
                f"capacity ({_MAX_RANK - 1})"
            )
        packed = (
            next_a
            | (next_b << _CODE_BITS)
            | (rank << _RANK_SHIFT)
            | (_CHANGED_BIT if result.changed else 0)
            | (_RESET_BIT if result.reset_triggered else 0)
        )
        self.pair_dict[key] = packed
        # Record the probe class; the table grows (or migrates from its
        # dense matrix to the hashed representation) as the codec interns
        # states, so no code is ever beyond reach.
        table = self._cache.probe_table
        table.ensure_capacity(self._codec.size)
        table.set(a, b, _class_of(packed, a, b))
        return packed

    def evaluate_packed_batch(
        self, keys: Sequence[int]
    ) -> Tuple[List[int], List[int], int]:
        """Resolve many packed pair keys in one call.

        Returns ``(values, raised, novel)``: the packed outcome per key
        (``0`` where tabulation consumed randomness — those positions are
        listed in ``raised``), and how many keys were newly tabulated.
        Keys are processed strictly in order, so codec interning — and
        therefore every downstream trajectory — is identical to scalar
        :meth:`evaluate_packed` calls; the point is amortizing the
        per-miss dispatch of the batched engine's lockstep step loop,
        where all of a step's misses arrive at settled codes.
        """
        get = self.pair_dict.get
        evaluate = self.evaluate_packed
        values: List[int] = []
        raised: List[int] = []
        novel = 0
        for position, key in enumerate(keys):
            value = get(key)
            if value is None:
                try:
                    value = evaluate(key)
                except RandomnessConsumed:
                    raised.append(position)
                    values.append(0)
                    continue
                novel += 1
            values.append(value)
        return values, raised, novel

    def probe_class(self, cu: np.ndarray, cv: np.ndarray) -> np.ndarray:
        """Probe-class bytes for a batch of state pairs; unknown reads -1."""
        table = self._cache.probe_table
        table.ensure_capacity(self._codec.size)
        return table.lookup(cu, cv)


class ArraySimulator:
    """Drop-in fast engine with the :class:`Simulator` result contract.

    Parameters
    ----------
    protocol:
        The population protocol to run.  Transitions that are deterministic
        given the two agent states get the tabulated fast paths; others run
        on the object fallback path.
    configuration:
        Initial configuration; defaults to ``protocol.initial_configuration()``.
    random_state:
        Seed or generator.  With the same seed (and default chunk size) a
        tabulated run reproduces the reference simulator's trajectory
        exactly.
    metrics:
        Optional :class:`MetricsCollector`; snapshots are taken at exactly
        the interactions the reference simulator would record.
    convergence_interval:
        How often (in interactions) to evaluate the convergence predicate.
        Defaults to ``max(n, 4096)`` — the reference default of ``n`` would
        force tiny processing blocks and an ``O(n)`` predicate evaluation
        every ``n`` interactions, capping throughput regardless of the
        kernel.  The coarser default inflates the recorded stopping time of
        a ``Θ(n² log n)`` run by well under 1%; pass ``convergence_interval=n``
        explicitly when exact same-seed stop parity with the reference is
        required.
    chunk_size:
        Pairs sampled per generator call.  Must match the reference
        scheduler's ``chunk_size`` (default 4096) for same-seed equality.
    max_dense_states:
        State budget for the eager dense-table attempt; protocols exceeding
        it use the lazy kernel.
    engine_mode:
        Force ``"dense"``, ``"lazy"`` or ``"object"`` instead of the
        automatic selection (used by tests; dense may legitimately fail with
        :class:`StateSpaceTooLarge`).
    cache:
        Optional :class:`EngineCache` shared across simulators of
        equivalent protocols.
    use_soa_kernel:
        Whether to ask the protocol for a struct-of-arrays
        :class:`~repro.core.soa.VectorizedKernel` (see
        ``PopulationProtocol.vectorized_kernel``) and route chunk prefixes
        through it on the table paths.  The kernel is exact, so this only
        trades performance; disable it to benchmark or debug the scalar
        walk in isolation.
    """

    #: Pairs resolved by the scalar walk after a kernel declines a pair,
    #: before the kernel is retried — the detour around rare non-fast-path
    #: events (a rank assignment, a phase bump).  Kept minimal: walked
    #: pairs in novel states pay the one-time tabulation cost.
    SOA_WALK_SEGMENT = 1
    #: Re-entry window after a decline; doubles on every fully consumed
    #: window so quiet stretches reach whole-chunk calls, while decline
    #: clusters never pay vector setup for pairs they will not consume.
    SOA_REENTRY_WINDOW = 512
    #: Folding the lazy pair cache into the kernel dispatch: a chunk is
    #: routed to the generic table path — even with a kernel attached —
    #: when the kernel's *scalar-loop share* for the chunk (its
    #: ``chunk_scalar_share`` diagnostic, when it provides one) is at
    #: least this fraction.  The kernel's vectorized wins (coin parity,
    #: bulk class handling) vanish in regimes where nearly every pair
    #: runs its ordered scalar chain loop; there a pre-tabulated pair
    #: costs less as a warm dictionary probe on the walk than as another
    #: loop iteration plus commit.  Measured on ``StableRanking`` n=128:
    #: the share sits near 1.0 during the early counter-churn and at
    #: 0.01-0.15 for the rest of the run, so 0.5 cleanly separates the
    #: regimes.
    SOA_DISPATCH_SCALAR_SHARE = 0.5
    #: ...but only when the chunk probe confirms the pair cache has seen
    #: the regime: chunks whose share of untabulated chunk-start pairs is
    #: at or above this fraction stay on the kernel, which exists
    #: precisely to keep novel pairs away from the µs-scale tabulation.
    #: The probe is conservative — in write-heavy regimes chunk-start
    #: codes mispredict the walked pair stream, so a fully pre-tabulated
    #: replay still reads 10-70% "novel" while genuinely novelty-bound
    #: regimes read 85-100% — hence the high cut.
    SOA_TABLE_DISPATCH_NOVELTY = 0.8
    #: Consecutive nearly-empty kernel calls before the engine temporarily
    #: stops trying the kernel (regimes like start-up leader election,
    #: where every pair is outside the fast path).
    SOA_STRIKE_LIMIT = 4
    #: Kernel calls count as a strike only below this yield.
    SOA_STRIKE_YIELD = 16
    #: Chunks processed entirely by the generic paths after striking out.
    SOA_BACKOFF_CHUNKS = 4

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Optional[Configuration] = None,
        random_state: RandomState = None,
        metrics: Optional[MetricsCollector] = None,
        convergence_interval: Optional[int] = None,
        chunk_size: int = 4096,
        max_dense_states: int = 64,
        engine_mode: Optional[str] = None,
        cache: Optional[EngineCache] = None,
        use_soa_kernel: bool = True,
        topology=None,
    ):
        self._protocol = protocol
        self._configuration = (
            configuration if configuration is not None
            else protocol.initial_configuration()
        )
        if self._configuration.population_size != protocol.n:
            raise SimulationLimitExceeded(
                f"configuration has {self._configuration.population_size} agents "
                f"but protocol was built for n={protocol.n}"
            )
        self._n = protocol.n
        if topology is not None:
            if topology.n != protocol.n:
                raise SimulationLimitExceeded(
                    f"topology was built for n={topology.n} "
                    f"but protocol has n={protocol.n}"
                )
            from ..topologies.scheduler import TopologyScheduler

            self._scheduler = TopologyScheduler(
                topology, random_state, chunk_size=chunk_size
            )
        else:
            self._scheduler = UniformPairScheduler(
                protocol.n, random_state, chunk_size=chunk_size
            )
        self._topology = topology
        self._chunk_size = chunk_size
        self._metrics = metrics
        self._convergence_interval = (
            convergence_interval
            if convergence_interval is not None
            else max(protocol.n, 4096)
        )
        if self._convergence_interval < 1:
            raise ValueError("convergence_interval must be positive")

        self._interactions = 0
        self._rank_assignments = 0
        self._resets = 0
        self._changed_since_check = True

        # Pair buffer: refilled with sample_chunk(chunk_size) so the
        # generator sees the exact call sequence of the reference scheduler.
        self._pair_buffer = np.empty((0, 2), dtype=np.int64)
        self._pair_cursor = 0

        self._codec: Optional[StateCodec] = None
        # Canonical per-agent codes: a Python list for the scalar walk, with
        # a numpy mirror for the vectorized probes (kept in sync).
        self._code_list: Optional[List[int]] = None
        self._codes_np: Optional[np.ndarray] = None
        self._kernel = None
        self._cache = cache if cache is not None else EngineCache()
        self._max_dense_states = max_dense_states
        self._mode = self._select_mode(engine_mode, max_dense_states)

        # Protocol-provided struct-of-arrays kernel (table paths only).
        self._soa: Optional[VectorizedKernel] = None
        self._soa_columns: Optional[ColumnStore] = None
        self._soa_interactions = 0
        self._soa_strikes = 0
        self._soa_backoff = 0
        if use_soa_kernel and self._mode in ("dense", "lazy"):
            soa = self._cache.soa_kernel
            if soa is None:
                soa = protocol.vectorized_kernel(self._codec)
                self._cache.soa_kernel = soa
            if soa is not None:
                self._soa = soa
                # The store's per-code columns are shared across runs (the
                # projection over thousands of interned states is pure
                # Python); the live per-agent binding is per engine and
                # refreshed before every kernel call.
                store = self._cache.soa_columns
                if store is None:
                    store = ColumnStore(self._codec, soa.columns())
                    self._cache.soa_columns = store
                self._soa_columns = store

    # ------------------------------------------------------------------
    # Mode selection
    # ------------------------------------------------------------------
    def _select_mode(self, requested: Optional[str], max_dense_states: int) -> str:
        if requested not in (None, "dense", "lazy", "object"):
            raise ValueError(f"unknown engine_mode {requested!r}")
        cache = self._cache
        if requested == "object" or (requested is None and cache.mode == "object"):
            return "object"
        if requested is None and self._protocol.consumes_randomness() is True:
            # The protocol declares up front that its transition draws
            # randomness (see PopulationProtocol.consumes_randomness), so
            # state pairs can never be tabulated: skip the doomed dense
            # attempt and go straight to the object path.
            cache.mode = "object"
            return "object"
        codec = cache.codec
        # Merge persisted tables (if a store is attached) before the first
        # interning, so a dense artifact lands in the still-empty codec and
        # pair spills seed the lazy tabulation.  No-op after first contact.
        cache.load_persisted(self._protocol)
        try:
            codes = codec.encode_many(self._configuration.states)
        except CodecError:
            if requested is not None:
                raise
            cache.mode = "object"
            return "object"
        self._codec = codec
        self._codes_np = codes
        self._code_list = codes.tolist()
        if self._n >= _MAX_RANK:
            if requested in ("dense", "lazy"):
                raise CodecError(
                    f"array engine table modes support n < {_MAX_RANK}, got {self._n}"
                )
            return "object"
        if requested == "lazy":
            self._kernel = _LazyKernel(self._protocol, codec, cache)
            return "lazy"
        if cache.mode is None or requested == "dense" or cache.mode == "dense":
            try:
                if (
                    cache.dense_tables is None
                    or cache.dense_tables.size < codec.size
                ):
                    # First compilation, or this configuration contains
                    # states outside the closure a previous sharer
                    # enumerated: recompile over the union so the tables
                    # stay complete for every code the codec knows.  The
                    # protocol's declared seed states (when few enough to
                    # fit the budget) join the start set, so protocols
                    # with a small *complete* concrete space — e.g. the
                    # Cai baseline's n label states — compile tables that
                    # also cover adversarial starts outside the designated
                    # configuration's closure.
                    start_codes = codes.tolist()
                    declared = list(self._protocol.seed_states())
                    if declared and len(declared) <= max_dense_states:
                        start_codes.extend(
                            codec.encode(state) for state in declared
                        )
                    cache.dense_tables = compile_dense_tables(
                        self._protocol, codec, start_codes,
                        max_states=max_dense_states,
                    )
                cache.mode = "dense"
                self._kernel = _DenseKernel(cache.dense_tables)
                return "dense"
            except StateSpaceTooLarge:
                if requested == "dense":
                    raise
                cache.mode = "lazy"
            except RandomnessConsumed:
                if requested == "dense":
                    raise
                cache.mode = "object"
                return "object"
        self._kernel = _LazyKernel(self._protocol, codec, cache)
        return "lazy"

    def _demote_to_object(self, remaining_pairs=None) -> None:
        """Switch to the object path mid-run (transition consumed randomness).

        Already-retired no-ops changed nothing and the walk executes in
        original order, so finishing the pending pairs on materialized
        states is exactly the sequential semantics.
        """
        self._sync_configuration()
        self._mode = "object"
        self._kernel = None
        self._soa = None
        self._soa_columns = None
        self._cache.mode = "object"
        if remaining_pairs:
            self._apply_pairs_object(remaining_pairs)

    # ------------------------------------------------------------------
    # Perturbation events
    # ------------------------------------------------------------------
    def apply_perturbation(self, mutate) -> Optional[dict]:
        """Apply an external state mutation via a codec round-trip.

        The engine decodes the live codes into real state objects, hands
        the configuration to ``mutate`` (which must *replace* states, not
        mutate them in place — see :mod:`repro.scenarios.events`), then
        re-encodes the perturbed population and re-enters the warm table
        path.  New states the perturbation introduced are interned on the
        fly; in dense mode the complete tables are recompiled over the
        widened space (degrading to the lazy kernel if the closure
        outgrows the dense budget).  The pair buffer is untouched, so the
        scheduler stream — and with it same-seed reference equality —
        survives the boundary.
        """
        if self._mode == "object":
            summary = mutate(self._configuration)
            self._changed_since_check = True
            return summary
        self._sync_configuration()
        summary = mutate(self._configuration)
        self._changed_since_check = True
        try:
            codes = self._codec.encode_many(self._configuration.states)
        except CodecError:
            # States the codec cannot key (exotic types injected by a
            # custom event) still simulate exactly on the object path.
            self._leave_table_modes()
            return summary
        self._codes_np = codes
        self._code_list = codes.tolist()
        self._refresh_tables_after_perturbation()
        return summary

    def _leave_table_modes(self) -> None:
        """Drop to the object path when the *configuration* already holds
        the truth (unlike :meth:`_demote_to_object`, no code sync)."""
        self._mode = "object"
        self._kernel = None
        self._soa = None
        self._soa_columns = None
        self._codec = None
        self._code_list = None
        self._codes_np = None
        self._cache.mode = "object"

    def _refresh_tables_after_perturbation(self) -> None:
        """Re-enter the table paths after the codec may have widened."""
        codec = self._codec
        if codec.size > _MAX_CODES:
            self._leave_table_modes()
            return
        if self._mode != "dense":
            # The lazy kernel tabulates novel pairs on demand and its
            # probe table grows with the codec; nothing to refresh.
            return
        tables = self._cache.dense_tables
        if tables is not None and tables.size >= codec.size:
            return
        try:
            self._cache.dense_tables = compile_dense_tables(
                self._protocol, codec, list(range(codec.size)),
                max_states=self._max_dense_states,
            )
        except StateSpaceTooLarge:
            self._mode = "lazy"
            self._cache.mode = "lazy"
            self._kernel = _LazyKernel(self._protocol, codec, self._cache)
            return
        except RandomnessConsumed:
            self._leave_table_modes()
            return
        self._kernel = _DenseKernel(self._cache.dense_tables)

    def run_segmented(
        self,
        events,
        max_interactions: int,
        stop_on_convergence: bool = True,
    ) -> SimulationResult:
        """Run with perturbation events, mirroring ``Simulator.run_segmented``.

        With matched seeds, chunk size and ``convergence_interval`` the
        trajectory — including the per-event recovery log — is
        bit-identical to the reference simulator's through every event
        boundary.
        """
        return segmented_run(
            self, events, max_interactions, stop_on_convergence
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> PopulationProtocol:
        """The protocol being simulated."""
        return self._protocol

    @property
    def mode(self) -> str:
        """The engine path in use: ``"dense"``, ``"lazy"`` or ``"object"``."""
        return self._mode

    @property
    def codec(self) -> Optional[StateCodec]:
        """The state codec (``None`` on the object path)."""
        return self._codec

    @property
    def kernel(self):
        """The active lookup kernel (``None`` on the object path)."""
        return self._kernel

    @property
    def soa_kernel(self):
        """The protocol-provided vectorized kernel (``None`` if absent)."""
        return self._soa

    @property
    def soa_interactions(self) -> int:
        """Interactions consumed by the SoA kernel so far (diagnostics)."""
        return self._soa_interactions

    @property
    def interactions(self) -> int:
        """Number of interactions simulated so far."""
        return self._interactions

    @property
    def rng(self):
        """The generator shared by the scheduler (and object-path transitions)."""
        return self._scheduler.rng

    @property
    def configuration(self) -> Configuration:
        """The current configuration (synchronized from the code array)."""
        self._sync_configuration()
        return self._configuration

    def _sync_configuration(self) -> None:
        if self._mode != "object" and self._code_list is not None:
            self._configuration.states[:] = self._codec.materialize_many(
                self._code_list
            )

    def _view_configuration(self) -> Configuration:
        """A read-only configuration view for predicates and probes.

        On the table paths the view shares codec prototypes across agents,
        so callers must not mutate the states (convergence predicates and
        metric probes only read).
        """
        if self._mode == "object":
            return self._configuration
        return Configuration(self._codec.prototype_view(self._code_list))

    def _check_converged(self) -> bool:
        return self._protocol.has_converged(self._view_configuration())

    # ------------------------------------------------------------------
    # Pair supply
    # ------------------------------------------------------------------
    def _next_pairs(self, count: int) -> np.ndarray:
        """Up to ``count`` pairs from the buffer (refilled in fixed chunks)."""
        if self._pair_cursor >= len(self._pair_buffer):
            self._pair_buffer = self._scheduler.sample_chunk(self._chunk_size)
            self._pair_cursor = 0
        take = min(count, len(self._pair_buffer) - self._pair_cursor)
        view = self._pair_buffer[self._pair_cursor:self._pair_cursor + take]
        self._pair_cursor += take
        return view

    # ------------------------------------------------------------------
    # Core advancement
    # ------------------------------------------------------------------
    def _advance(self, count: int) -> None:
        """Simulate exactly ``count`` further interactions."""
        done = 0
        while done < count:
            if self._mode == "object":
                self._advance_object(count - done)
                return
            pairs = self._next_pairs(count - done)
            self._process_chunk(pairs)
            done += len(pairs)

    def _advance_object(self, count: int) -> None:
        # Drain pairs the table path already sampled into the engine's
        # buffer before drawing fresh ones: a mid-run demotion must consume
        # the sampled sequence in order, or the trajectory would silently
        # diverge from the generator's pair stream.
        if self._pair_cursor < len(self._pair_buffer):
            leftover = self._pair_buffer[self._pair_cursor:self._pair_cursor + count]
            self._pair_cursor += len(leftover)
            self._apply_pairs_object(leftover.tolist())
            count -= len(leftover)
            if count <= 0:
                return
        protocol = self._protocol
        states = self._configuration.states
        scheduler = self._scheduler
        rng = scheduler.rng
        sample = scheduler.sample
        for _ in range(count):
            i, j = sample()
            result = protocol.transition(states[i], states[j], rng)
            self._interactions += 1
            if result.rank_assigned is not None:
                self._rank_assignments += 1
            if result.reset_triggered:
                self._resets += 1
            if result.changed:
                self._changed_since_check = True

    def _apply_pairs_object(self, pairs) -> None:
        """Object-path execution of explicit pairs (mid-chunk demotion)."""
        protocol = self._protocol
        states = self._configuration.states
        rng = self._scheduler.rng
        for i, j in pairs:
            result = protocol.transition(states[i], states[j], rng)
            self._interactions += 1
            if result.rank_assigned is not None:
                self._rank_assignments += 1
            if result.reset_triggered:
                self._resets += 1
            if result.changed:
                self._changed_since_check = True

    def _process_chunk(self, pairs: np.ndarray) -> None:
        """Execute a chunk of pairs exactly, preferring the SoA kernel.

        With a protocol-provided :class:`~repro.core.soa.VectorizedKernel`
        attached, the kernel consumes a maximal exact prefix of the chunk
        in column operations; the first pair it declines (and a bounded
        segment after it) is resolved by the generic probe-and-walk path,
        then the kernel is retried on the remainder.  Kernel-hostile
        regimes (start-up leader election, reset storms) are detected by a
        strike counter and processed generically for a few chunks before
        the kernel is retried.  Without a kernel this is exactly the
        probe-and-walk path.
        """
        if self._soa is None:
            self._process_chunk_tables(pairs)
            return
        if self._soa_backoff > 0:
            self._soa_backoff -= 1
            self._process_chunk_tables(pairs)
            return
        share_probe = getattr(self._soa, "chunk_scalar_share", None)
        if self._mode == "lazy" and share_probe is not None:
            # Fold the lazy pair cache into the kernel dispatch: in
            # scalar-loop-bound regimes, chunks the cache has mostly seen
            # before run faster on the warm table path than in the
            # kernel's chains, so the kernel keeps only the novelty-heavy
            # chunks (where walking would mean tabulating).  Dense tables
            # are complete, so this distinction does not exist there and
            # the kernel always gets the chunk.
            share = share_probe(self._codes_np[pairs[:, 1]], self._soa_columns)
            if share >= self.SOA_DISPATCH_SCALAR_SHARE:
                classes = self._kernel.probe_class(
                    self._codes_np[pairs[:, 0]], self._codes_np[pairs[:, 1]]
                )
                novel = int(np.count_nonzero(classes == -1))
                if novel < self.SOA_TABLE_DISPATCH_NOVELTY * len(pairs):
                    self._process_chunk_tables(pairs, classes)
                    return
        # The column store may be shared with other simulators on the same
        # cache: (re-)bind our live population before handing it over.
        self._soa_columns.bind(self._codes_np, self._code_list)
        total = len(pairs)
        start = 0
        window = total
        while start < total:
            end = min(start + window, total)
            outcome = self._soa.apply_chunk(
                pairs[start:end, 0],
                pairs[start:end, 1],
                self._soa_columns,
                self._scheduler.rng,
            )
            processed = outcome.processed
            if processed:
                self._interactions += processed
                self._soa_interactions += processed
                self._rank_assignments += outcome.rank_assignments
                self._resets += outcome.resets
                if outcome.changed:
                    self._changed_since_check = True
                start += processed
            if start >= total:
                self._soa_strikes = 0
                return
            if start >= end:
                # The window was fully consumed without a decline; grow it
                # back toward whole-chunk calls.  A full window is a
                # productive call, so it also clears the strike count.
                self._soa_strikes = 0
                window = min(window * 2, total)
                continue
            # The kernel declined the pair at ``start``: score the attempt,
            # walk a short segment past the offending pair, then re-enter
            # on a reduced window.
            if processed >= self.SOA_STRIKE_YIELD:
                self._soa_strikes = 0
            else:
                self._soa_strikes += 1
                if self._soa_strikes >= self.SOA_STRIKE_LIMIT:
                    self._soa_strikes = 0
                    self._soa_backoff = self.SOA_BACKOFF_CHUNKS
                    self._process_chunk_tables(pairs[start:])
                    return
            segment_end = min(start + self.SOA_WALK_SEGMENT, total)
            self._walk_all(
                pairs[start:segment_end, 0].tolist(),
                pairs[start:segment_end, 1].tolist(),
            )
            start = segment_end
            if self._mode == "object":
                # The segment demoted the engine mid-chunk (its own tail
                # already ran on the object path); finish the outer chunk
                # there too, in original order.
                if start < total:
                    self._apply_pairs_object(pairs[start:].tolist())
                return
            if start < total:
                # Extend the segment over pairs the pair cache already
                # holds: each costs one warm dictionary probe, cheaper
                # than another kernel re-entry, and never tabulates.
                start += self._walk_while_tabulated(
                    pairs[start:, 0].tolist(), pairs[start:, 1].tolist()
                )
            window = self.SOA_REENTRY_WINDOW

    def _process_chunk_tables(
        self, pairs: np.ndarray, classes: Optional[np.ndarray] = None
    ) -> None:
        """Execute a chunk of pairs with exact sequential semantics.

        Optimistic elimination with walk-time validation: the volatile set
        is taken directly from the chunk probes (agents some pair currently
        writes, plus both agents of every untabulated pair) with no
        transitive closure.  Pairs touching no volatile agent are
        *tentatively* retired, their statistics deferred; the ordered walk
        over the rest verifies the assumption.  If a walked pair writes an
        agent assumed stable — possible only when an operand written
        earlier in the chunk flipped the pair's behavior — that agent joins
        the volatile set and its later tentatively-retired pairs are merged
        back into the walk at their original positions.  Retired pairs are
        therefore exact no-ops: their operands provably kept their
        chunk-start states for the whole chunk.
        """
        total = len(pairs)
        agents_i = pairs[:, 0]
        agents_r = pairs[:, 1]
        codes_np = self._codes_np

        # Probe the whole chunk against the current codes (unless the
        # kernel dispatch already did).  Unknown pairs are NOT tabulated
        # here — their operands may still change before their turn; they
        # read as "writes both agents" (all class bits set) and the walk
        # resolves them against settled codes.
        if classes is None:
            classes = self._kernel.probe_class(codes_np[agents_i], codes_np[agents_r])

        volatile = np.zeros(self._n, dtype=bool)
        volatile[agents_i[(classes & _CLS_WRITES_U) != 0]] = True
        volatile[agents_r[(classes & _CLS_WRITES_V) != 0]] = True

        # Flagged-but-writeless pairs (rank/reset/changed without a state
        # change) are walked too, so their exact flags are counted; retired
        # pairs therefore contribute no statistics at all.
        walk_mask = volatile[agents_i] | volatile[agents_r]
        walk_mask |= (classes & _CLS_FLAGGED) != 0
        walk_count = int(np.count_nonzero(walk_mask))
        if walk_count == 0:
            self._interactions += total
            return
        if walk_count == total:
            # Nothing retired, so no elimination to validate: take the
            # simple in-order loop without the reactivation bookkeeping.
            self._walk_all(agents_i.tolist(), agents_r.tolist())
            return
        safe = ~walk_mask
        order_np = np.flatnonzero(walk_mask)
        order = order_np.tolist()
        w_i = agents_i[order_np].tolist()
        w_r = agents_r[order_np].tolist()
        in_v = volatile.tolist()

        codes = self._code_list
        pair_dict = self._kernel.pair_dict
        get = pair_dict.get
        evaluate = self._kernel.evaluate_packed
        pending: Dict[int, int] = {}
        walked = 0
        ranks = 0
        resets = 0
        changed = False
        demote_positions: Optional[List[int]] = None

        # The walk lists may be re-built on violations, so iterate via an
        # explicit index.
        cursor = 0
        try:
            while cursor < len(order):
                position = order[cursor]
                i = w_i[cursor]
                j = w_r[cursor]
                cursor += 1
                a = codes[i]
                b = codes[j]
                value = get((a << _CODE_BITS) | b)
                if value is None:
                    value = evaluate((a << _CODE_BITS) | b)
                next_a = value & _CODE_MASK
                if next_a != a:
                    codes[i] = next_a
                    pending[i] = next_a
                    if not in_v[i]:
                        merged = self._reactivate(
                            i, position, order, cursor, safe, agents_i, agents_r
                        )
                        if merged is not None:
                            order, w_i, w_r = merged
                            cursor = 0
                        in_v[i] = True
                next_b = (value >> _CODE_BITS) & _CODE_MASK
                if next_b != b:
                    codes[j] = next_b
                    pending[j] = next_b
                    if not in_v[j]:
                        merged = self._reactivate(
                            j, position, order, cursor, safe, agents_i, agents_r
                        )
                        if merged is not None:
                            order, w_i, w_r = merged
                            cursor = 0
                        in_v[j] = True
                walked += 1
                if value & _FLAG_FIELD:
                    if value & _CHANGED_BIT:
                        changed = True
                    if value & _RANK_FIELD:
                        ranks += 1
                    if value & _RESET_BIT:
                        resets += 1
        except RandomnessConsumed:
            # Hand the rest of the chunk to the object path in original
            # order: the unfinished walk positions plus every
            # not-yet-validated tentatively-safe pair after the current one.
            position = order[cursor - 1]
            tail = np.flatnonzero(safe)
            remaining = sorted(
                set(order[cursor - 1:]) | set(tail[tail > position].tolist())
            )
            # Safe pairs before the demotion point were validated by the
            # walk so far: no non-volatile agent has changed yet, so they
            # are exact (statistics-free) no-ops.
            self._interactions += int(np.count_nonzero(tail <= position))
            demote_positions = remaining

        if pending:
            self._codes_np[list(pending.keys())] = list(pending.values())
        self._interactions += walked
        self._rank_assignments += ranks
        self._resets += resets
        if changed:
            self._changed_since_check = True

        if demote_positions is not None:
            remaining_np = np.asarray(demote_positions, dtype=np.int64)
            self._demote_to_object(
                np.stack(
                    [agents_i[remaining_np], agents_r[remaining_np]], axis=1
                ).tolist()
            )
            return

        # Pairs still marked safe survived validation: exact no-ops.
        self._interactions += int(np.count_nonzero(safe))

    def _walk_all(self, ai: List[int], ar: List[int]) -> None:
        """In-order walk of a whole chunk (nothing was retired).

        Same semantics as the validated walk in :meth:`_process_chunk`, but
        with no elimination to protect there is no reactivation bookkeeping,
        which makes the per-interaction loop measurably tighter — this is
        the hot path of the write-heavy early phase.
        """
        codes = self._code_list
        pair_dict = self._kernel.pair_dict
        evaluate = self._kernel.evaluate_packed
        get = pair_dict.get
        pending: Dict[int, int] = {}
        walked = 0
        ranks = 0
        resets = 0
        changed = False
        demote_from: Optional[int] = None
        try:
            for i, j in zip(ai, ar):
                a = codes[i]
                b = codes[j]
                value = get((a << _CODE_BITS) | b)
                if value is None:
                    value = evaluate((a << _CODE_BITS) | b)
                next_a = value & _CODE_MASK
                if next_a != a:
                    codes[i] = next_a
                    pending[i] = next_a
                next_b = (value >> _CODE_BITS) & _CODE_MASK
                if next_b != b:
                    codes[j] = next_b
                    pending[j] = next_b
                walked += 1
                if value & _FLAG_FIELD:
                    if value & _CHANGED_BIT:
                        changed = True
                    if value & _RANK_FIELD:
                        ranks += 1
                    if value & _RESET_BIT:
                        resets += 1
        except RandomnessConsumed:
            demote_from = walked
        if pending:
            self._codes_np[list(pending.keys())] = list(pending.values())
        self._interactions += walked
        self._rank_assignments += ranks
        self._resets += resets
        if changed:
            self._changed_since_check = True
        if demote_from is not None:
            self._demote_to_object(
                list(zip(ai[demote_from:], ar[demote_from:]))
            )

    def _walk_while_tabulated(self, ai: List[int], ar: List[int]) -> int:
        """Walk pairs in order while the pair cache already holds them.

        The tabulation-free sibling of :meth:`_walk_all`, used to extend a
        kernel-decline segment: execution stops in front of the first pair
        whose current state pair is not in the cache (that pair goes back
        to the kernel), so every step is a warm dictionary probe and the
        walk can never tabulate or demote.  Returns the number of pairs
        consumed.
        """
        codes = self._code_list
        get = self._kernel.pair_dict.get
        pending: Dict[int, int] = {}
        walked = 0
        ranks = 0
        resets = 0
        changed = False
        for i, j in zip(ai, ar):
            a = codes[i]
            b = codes[j]
            value = get((a << _CODE_BITS) | b)
            if value is None:
                break
            next_a = value & _CODE_MASK
            if next_a != a:
                codes[i] = next_a
                pending[i] = next_a
            next_b = (value >> _CODE_BITS) & _CODE_MASK
            if next_b != b:
                codes[j] = next_b
                pending[j] = next_b
            walked += 1
            if value & _FLAG_FIELD:
                if value & _CHANGED_BIT:
                    changed = True
                if value & _RANK_FIELD:
                    ranks += 1
                if value & _RESET_BIT:
                    resets += 1
        if pending:
            self._codes_np[list(pending.keys())] = list(pending.values())
        self._interactions += walked
        self._rank_assignments += ranks
        self._resets += resets
        if changed:
            self._changed_since_check = True
        return walked

    def _reactivate(self, agent, position, order, cursor, safe, agents_i, agents_r):
        """A walked pair wrote an agent assumed stable: re-walk its pairs.

        Later tentatively-retired pairs touching ``agent`` get their probes
        invalidated by this write, so they are merged back into the walk at
        their original positions (pairs before ``position`` are unaffected:
        the agent provably held its chunk-start state until now).  Returns
        the rebuilt ``(order, walk_i, walk_r)`` tail to restart on, or
        ``None`` when no retired pair is affected.
        """
        hits = np.flatnonzero(
            ((agents_i == agent) | (agents_r == agent)) & safe
        )
        hits = hits[hits > position]
        if not len(hits):
            return None
        safe[hits] = False
        merged = sorted(order[cursor:] + hits.tolist())
        merged_np = np.asarray(merged, dtype=np.int64)
        # Restart iteration on the merged tail; already-walked pairs stay done.
        return merged, agents_i[merged_np].tolist(), agents_r[merged_np].tolist()

    # ------------------------------------------------------------------
    # Simulator-compatible driving loop
    # ------------------------------------------------------------------
    def _split_at_metrics(self, target: int) -> int:
        """Clip a block target so metric snapshots land on exact interactions."""
        if self._metrics is None:
            return target
        due = self._metrics.next_due
        if due <= self._interactions:
            return self._interactions + 1
        return min(target, due)

    def run(
        self,
        max_interactions: int,
        stop_on_convergence: bool = True,
        raise_on_limit: bool = False,
    ) -> SimulationResult:
        """Run until convergence or until ``max_interactions`` is reached.

        Mirrors :meth:`Simulator.run`: the convergence predicate is
        evaluated every ``convergence_interval`` interactions, metric
        snapshots are recorded on the collector's schedule, and the
        resulting :class:`SimulationResult` has the same contract.
        """
        if max_interactions < 0:
            raise ValueError("max_interactions must be non-negative")

        if self._metrics is not None and self._interactions == 0:
            self._metrics.record(0, self._view_configuration())

        budget_end = self._interactions + max_interactions
        converged = self._check_converged()
        next_check = self._interactions + self._convergence_interval

        while self._interactions < budget_end and not (converged and stop_on_convergence):
            target = self._split_at_metrics(min(budget_end, next_check))
            self._advance(target - self._interactions)
            if self._metrics is not None:
                self._metrics.maybe_record(
                    self._interactions, self._view_configuration()
                )
            if self._interactions >= next_check:
                if self._changed_since_check:
                    converged = self._check_converged()
                    self._changed_since_check = False
                next_check = self._interactions + self._convergence_interval

        converged = self._check_converged()
        self._record_final_snapshot()
        self._sync_configuration()
        result = SimulationResult(
            converged=converged,
            interactions=self._interactions,
            configuration=self._configuration,
            metrics=self._metrics.series if self._metrics is not None else {},
            rank_assignments=self._rank_assignments,
            resets=self._resets,
            protocol=self._protocol.describe(),
        )
        if raise_on_limit and not converged:
            raise SimulationLimitExceeded(
                f"{self._protocol.name} did not converge within "
                f"{self._interactions} interactions",
                result=result,
            )
        return result

    def run_until(
        self,
        predicate: Callable[[Configuration], bool],
        max_interactions: int,
        check_interval: Optional[int] = None,
    ) -> SimulationResult:
        """Run until ``predicate(configuration)`` holds (checked periodically)."""
        if check_interval is None:
            check_interval = max(1, self._protocol.n // 4)
        budget_end = self._interactions + max_interactions
        satisfied = predicate(self._view_configuration())
        while not satisfied and self._interactions < budget_end:
            target = min(self._interactions + check_interval, budget_end)
            while self._interactions < target:
                sub_target = self._split_at_metrics(target)
                self._advance(sub_target - self._interactions)
                if self._metrics is not None:
                    self._metrics.maybe_record(
                        self._interactions, self._view_configuration()
                    )
            satisfied = predicate(self._view_configuration())
        self._record_final_snapshot()
        self._sync_configuration()
        return SimulationResult(
            converged=satisfied,
            interactions=self._interactions,
            configuration=self._configuration,
            metrics=self._metrics.series if self._metrics is not None else {},
            rank_assignments=self._rank_assignments,
            resets=self._resets,
            protocol=self._protocol.describe(),
        )

    def _record_final_snapshot(self) -> None:
        """Close metric series at the final interaction (like the reference)."""
        if self._metrics is None:
            return
        for series in self._metrics.series.values():
            if series.interactions and series.interactions[-1] == self._interactions:
                return
            break
        self._metrics.record(self._interactions, self._view_configuration())


def make_simulator(
    protocol: PopulationProtocol,
    engine: str = "reference",
    **kwargs,
):
    """Build a simulator for ``protocol`` by engine name.

    ``engine="reference"`` returns the agent-level :class:`Simulator`,
    ``engine="array"`` the vectorized :class:`ArraySimulator`, and
    ``engine="auto"`` asks the backend registry
    (:mod:`repro.core.backends`) for the fastest agent-level backend
    capable of the protocol — negotiated through the protocol's
    rng-consumption declaration.  All engines accept the shared keyword
    arguments (``configuration``, ``random_state``, ``metrics``,
    ``convergence_interval``).
    """
    if engine == "reference":
        return Simulator(protocol, **kwargs)
    if engine == "array":
        return ArraySimulator(protocol, **kwargs)
    if engine == "auto":
        from .backends import resolve_backend

        backend, _ = resolve_backend(
            protocol, "fresh", protocol.n, engine="auto", kinds=("agent",)
        )
        return backend.create(protocol, **kwargs)
    raise ValueError(
        f"unknown engine {engine!r}; expected one of {ENGINE_NAMES + ('auto',)}"
    )
