"""The reference (agent-level) simulator.

:class:`Simulator` drives a :class:`~repro.core.protocol.PopulationProtocol`
under the uniform random scheduler exactly as defined in the paper's model:
one ordered pair of distinct agents per time step, chosen uniformly at
random, updated by the protocol's transition function.

The simulator is the ground truth against which the faster engines
(:mod:`repro.core.aggregate`, the array-based engines in
:mod:`repro.protocols.ranking`) are validated.  It favours clarity over raw
speed, but still amortizes pair sampling through the scheduler's chunked
sampling and checks convergence only periodically (convergence checks are
``O(n)``; checking after every interaction would dominate the runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .configuration import Configuration
from .errors import SimulationLimitExceeded
from .metrics import MetricsCollector, TimeSeries
from .protocol import PopulationProtocol, TransitionResult
from .rng import RandomState
from .scheduler import UniformPairScheduler

__all__ = ["Simulator", "SimulationResult", "segmented_run"]


def segmented_run(
    simulator,
    events,
    max_interactions: int,
    stop_on_convergence: bool = True,
) -> SimulationResult:
    """Run a simulator with perturbation events applied between segments.

    ``events`` is a sequence of objects exposing ``at`` (interaction
    count, relative to the current position of the simulator), ``label``
    and ``mutate(configuration) -> summary`` — typically
    :class:`~repro.scenarios.events.BoundEvent` instances from
    :func:`~repro.scenarios.events.bind_schedule`.  The simulator runs to
    each event's interaction count exactly, applies the perturbation
    through its :meth:`~Simulator.apply_perturbation` hook (the array
    engine round-trips through its codec there), and continues on the
    *same* pair stream — events draw from their own generators, so the
    scheduler's sequence is untouched and a same-seed run is bit-identical
    across engines through every boundary.

    Per segment (the stretch from one event to the next) the run watches
    for *recovery*: the first interaction, on the simulator's convergence
    cadence, at which the protocol's convergence predicate holds again.
    The per-segment log is returned in :attr:`SimulationResult.events`.
    ``stop_on_convergence`` applies only after the last event fires —
    earlier segments always run their full length so later events fire at
    their specified times.  Events beyond the interaction budget do not
    fire.

    This function is engine-agnostic; ``Simulator.run_segmented`` and
    ``ArraySimulator.run_segmented`` are thin delegating methods.
    """
    if max_interactions < 0:
        raise ValueError("max_interactions must be non-negative")
    start = simulator.interactions
    budget_end = start + max_interactions
    log = [{"at": start, "label": "initial", "recovered_at": None}]
    watch = log[0]

    def advance_to(target: int) -> None:
        """Run to ``target`` exactly, recording the segment's recovery."""
        while simulator.interactions < target:
            if watch["recovered_at"] is not None:
                simulator.run(
                    target - simulator.interactions, stop_on_convergence=False
                )
                return
            segment = simulator.run(
                target - simulator.interactions, stop_on_convergence=True
            )
            if segment.converged:
                watch["recovered_at"] = simulator.interactions

    for event in sorted(events, key=lambda event: event.at):
        fire_at = start + event.at
        if fire_at > budget_end:
            break
        advance_to(fire_at)
        summary = simulator.apply_perturbation(event.mutate) or {}
        watch = {
            "at": simulator.interactions,
            "label": getattr(event, "label", "event"),
            "recovered_at": None,
        }
        # The applier's summary must not shadow the segment-log fields —
        # a custom event returning e.g. an "at" of its own would silently
        # corrupt the recovery accounting.
        watch.update(
            (key, value) for key, value in summary.items()
            if key not in ("at", "label", "recovered_at")
        )
        log.append(watch)

    if stop_on_convergence:
        # After the last event the run stops at the segment's recovery
        # (or exhausts the budget), exactly like a plain run() stops at
        # its first converged check.
        while (
            simulator.interactions < budget_end
            and watch["recovered_at"] is None
        ):
            segment = simulator.run(
                budget_end - simulator.interactions, stop_on_convergence=True
            )
            if segment.converged:
                watch["recovered_at"] = simulator.interactions
    else:
        advance_to(budget_end)

    # A zero-length run snapshots the final state through the simulator's
    # own result construction (final convergence check, closing metrics
    # snapshot) without advancing the pair stream.
    result = simulator.run(0, stop_on_convergence=False)
    result.events = log
    return result


@dataclass
class SimulationResult:
    """Outcome of a simulation run.

    Attributes
    ----------
    converged:
        Whether the protocol's convergence predicate held when the run ended.
    interactions:
        Total number of interactions simulated.
    configuration:
        The final configuration (shared with the simulator, not a copy).
    metrics:
        Recorded time series, keyed by probe name (empty if no collector).
    rank_assignments:
        Number of interactions in which a rank was assigned.
    resets:
        Number of interactions that triggered a reset.
    protocol:
        Metadata dictionary from ``protocol.describe()``.
    events:
        Segment log of a :func:`segmented_run`: one entry per watch
        segment (the initial segment plus one per fired perturbation),
        each recording ``at`` (the interaction the segment started at),
        ``label`` (``"initial"`` or the event kind), ``recovered_at``
        (first interaction at which the convergence predicate held after
        the segment started, or ``None``) and the event applier's summary
        fields.  Empty for plain runs.
    """

    converged: bool
    interactions: int
    configuration: Configuration
    metrics: Dict[str, TimeSeries] = field(default_factory=dict)
    rank_assignments: int = 0
    resets: int = 0
    protocol: Dict[str, object] = field(default_factory=dict)
    events: list = field(default_factory=list)

    @property
    def normalized_interactions(self) -> float:
        """Interactions divided by ``n²`` (the unit used by the paper's plots)."""
        n = self.configuration.population_size
        return self.interactions / float(n * n)


class Simulator:
    """Agent-level simulator under the uniform random scheduler.

    Parameters
    ----------
    protocol:
        The population protocol to run.
    configuration:
        Initial configuration; defaults to ``protocol.initial_configuration()``.
    random_state:
        Seed or generator; the same stream drives pair selection and any
        randomness the protocol consumes (synthetic coins are deterministic
        state togglings and consume none).
    metrics:
        Optional :class:`MetricsCollector` sampled on its own schedule.
    convergence_interval:
        How often (in interactions) to evaluate the convergence predicate.
        Defaults to ``n``.
    on_event:
        Optional callback ``(interaction, initiator, responder, result)``
        invoked for every interaction whose transition reported a change.
    topology:
        Optional :class:`~repro.topologies.Topology` restricting (and
        weighting) the pairs the scheduler may deliver.  ``None`` keeps the
        paper's uniform scheduler on the complete graph.
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Optional[Configuration] = None,
        random_state: RandomState = None,
        metrics: Optional[MetricsCollector] = None,
        convergence_interval: Optional[int] = None,
        on_event: Optional[Callable[[int, int, int, TransitionResult], None]] = None,
        topology=None,
    ):
        self._protocol = protocol
        self._configuration = (
            configuration if configuration is not None
            else protocol.initial_configuration()
        )
        if self._configuration.population_size != protocol.n:
            raise SimulationLimitExceeded(
                f"configuration has {self._configuration.population_size} agents "
                f"but protocol was built for n={protocol.n}"
            )
        if topology is not None:
            if topology.n != protocol.n:
                raise SimulationLimitExceeded(
                    f"topology was built for n={topology.n} "
                    f"but protocol has n={protocol.n}"
                )
            from ..topologies.scheduler import TopologyScheduler

            self._scheduler = TopologyScheduler(topology, random_state)
        else:
            self._scheduler = UniformPairScheduler(protocol.n, random_state)
        self._metrics = metrics
        self._convergence_interval = (
            convergence_interval if convergence_interval is not None else protocol.n
        )
        if self._convergence_interval < 1:
            raise ValueError("convergence_interval must be positive")
        self._on_event = on_event
        self._interactions = 0
        self._rank_assignments = 0
        self._resets = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> PopulationProtocol:
        """The protocol being simulated."""
        return self._protocol

    @property
    def configuration(self) -> Configuration:
        """The current (live, mutable) configuration."""
        return self._configuration

    @property
    def interactions(self) -> int:
        """Number of interactions simulated so far."""
        return self._interactions

    @property
    def rng(self):
        """The generator shared by the scheduler and protocol transitions."""
        return self._scheduler.rng

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> TransitionResult:
        """Simulate a single interaction and return its transition result."""
        initiator_index, responder_index = self._scheduler.sample()
        states = self._configuration.states
        result = self._protocol.transition(
            states[initiator_index], states[responder_index], self._scheduler.rng
        )
        self._interactions += 1
        if result.rank_assigned is not None:
            self._rank_assignments += 1
        if result.reset_triggered:
            self._resets += 1
        if self._on_event is not None and result.changed:
            self._on_event(self._interactions, initiator_index, responder_index, result)
        return result

    def run(
        self,
        max_interactions: int,
        stop_on_convergence: bool = True,
        raise_on_limit: bool = False,
    ) -> SimulationResult:
        """Run until convergence or until ``max_interactions`` is reached.

        Parameters
        ----------
        max_interactions:
            Interaction budget for this call (not cumulative across calls).
        stop_on_convergence:
            If ``False``, always run the full budget (useful for recording
            metric series past convergence, as the paper's Figure 2 does).
        raise_on_limit:
            If ``True``, raise :class:`SimulationLimitExceeded` when the
            budget is exhausted without convergence.
        """
        if max_interactions < 0:
            raise ValueError("max_interactions must be non-negative")

        metrics = self._metrics
        if metrics is not None and self._interactions == 0:
            metrics.record(0, self._configuration)

        budget_end = self._interactions + max_interactions
        converged = self._protocol.has_converged(self._configuration)
        next_check = self._interactions + self._convergence_interval

        # ``changed_since_check`` lets the loop skip the O(n) convergence
        # re-evaluation when no transition reported a change since the last
        # check — the predicate's value cannot have moved.  The metrics
        # branch is hoisted out of the loop: collectors are rare and the
        # per-step ``is not None`` test is measurable at this call volume.
        changed_since_check = True
        if metrics is None:
            while self._interactions < budget_end and not (converged and stop_on_convergence):
                if self.step().changed:
                    changed_since_check = True
                if self._interactions >= next_check:
                    if changed_since_check:
                        converged = self._protocol.has_converged(self._configuration)
                        changed_since_check = False
                    next_check = self._interactions + self._convergence_interval
        else:
            while self._interactions < budget_end and not (converged and stop_on_convergence):
                if self.step().changed:
                    changed_since_check = True
                metrics.maybe_record(self._interactions, self._configuration)
                if self._interactions >= next_check:
                    if changed_since_check:
                        converged = self._protocol.has_converged(self._configuration)
                        changed_since_check = False
                    next_check = self._interactions + self._convergence_interval

        converged = self._protocol.has_converged(self._configuration)
        self._record_final_snapshot()
        result = SimulationResult(
            converged=converged,
            interactions=self._interactions,
            configuration=self._configuration,
            metrics=self._metrics.series if self._metrics is not None else {},
            rank_assignments=self._rank_assignments,
            resets=self._resets,
            protocol=self._protocol.describe(),
        )
        if raise_on_limit and not converged:
            raise SimulationLimitExceeded(
                f"{self._protocol.name} did not converge within "
                f"{self._interactions} interactions",
                result=result,
            )
        return result

    def _record_final_snapshot(self) -> None:
        """Record a closing metrics snapshot so series always end at the final state."""
        if self._metrics is None:
            return
        for series in self._metrics.series.values():
            if series.interactions and series.interactions[-1] == self._interactions:
                return
            break
        self._metrics.record(self._interactions, self._configuration)

    # ------------------------------------------------------------------
    # Perturbation events
    # ------------------------------------------------------------------
    def apply_perturbation(self, mutate: Callable[[Configuration], Optional[dict]]):
        """Apply an external state mutation between interactions.

        ``mutate`` receives the live configuration and may replace agent
        states in place; its return value (an event summary, or ``None``)
        is passed through.  The scheduler's pair stream is untouched —
        perturbations must draw any randomness from their own generators
        (see :mod:`repro.scenarios.events`).
        """
        return mutate(self._configuration)

    def run_segmented(
        self,
        events,
        max_interactions: int,
        stop_on_convergence: bool = True,
    ) -> SimulationResult:
        """Run with perturbation events applied at their interaction counts.

        See :func:`segmented_run` for the semantics; the array engine
        implements the same method, and same-seed runs are bit-identical
        across the two through every event boundary.
        """
        return segmented_run(
            self, events, max_interactions, stop_on_convergence
        )

    def run_until(
        self,
        predicate: Callable[[Configuration], bool],
        max_interactions: int,
        check_interval: Optional[int] = None,
    ) -> SimulationResult:
        """Run until ``predicate(configuration)`` holds (checked periodically).

        Used by experiments that measure the time to reach intermediate
        milestones, e.g. "half of the agents are ranked" in Figure 3.
        """
        if check_interval is None:
            check_interval = max(1, self._protocol.n // 4)
        budget_end = self._interactions + max_interactions
        satisfied = predicate(self._configuration)
        metrics = self._metrics
        while not satisfied and self._interactions < budget_end:
            target = min(self._interactions + check_interval, budget_end)
            if metrics is None:
                while self._interactions < target:
                    self.step()
            else:
                while self._interactions < target:
                    self.step()
                    metrics.maybe_record(self._interactions, self._configuration)
            satisfied = predicate(self._configuration)
        self._record_final_snapshot()
        return SimulationResult(
            converged=satisfied,
            interactions=self._interactions,
            configuration=self._configuration,
            metrics=self._metrics.series if self._metrics is not None else {},
            rank_assignments=self._rank_assignments,
            resets=self._resets,
            protocol=self._protocol.describe(),
        )
