"""Probe-class storage for the array engine: dense below, hashed above.

The array engine's chunk-wide no-op elimination asks one question per
sampled pair: *what does the interaction between these two state codes do?*
— compressed to one byte of probe-class bits (writes-initiator,
writes-responder, carries-flags; see :mod:`repro.core.array_engine`).  The
natural store is a dense ``(S × S)`` int8 matrix indexed by the two codes,
and for the paper's protocols at moderate ``n`` that is also the fastest
one (a single flattened ``take`` per chunk).  But the matrix is quadratic
in the number of interned states: at the previous hard cap of 8192 states
it already weighed 64 MiB, and the baselines' ``Θ(n)``-overhead state
spaces (or ``StableRanking`` at ``n ≥ 1024``) blow far past it.  Beyond
the cap, probes used to degrade to "unknown", silently pushing every
affected pair onto the scalar walk forever — the cold path exactly where
large runs spend their time.

:class:`ProbeClassTable` removes the cap by switching representation at a
size threshold:

``dense``
    While the codec holds at most ``dense_limit`` states, classes live in
    the familiar ``(S_cap × S_cap)`` int8 matrix (grown in power-of-two
    steps).  Lookups are one fancy-index gather; entries never collide.
``hashed``
    Past the threshold the matrix is migrated into an open-addressed hash
    table mapping the packed pair key ``(a << key_bits) | b`` to its class
    byte.  Memory is proportional to the number of *tabulated pairs* — a
    single trajectory visits a vanishing fraction of ``S²`` for large
    state spaces — and lookups stay vectorized: a whole chunk of keys is
    resolved with a few rounds of batched linear probing (expected O(1)
    rounds at the enforced load factor).

Both representations answer unknown pairs with ``-1``, matching the
engine's conservative "writes both agents, carries flags" reading, so the
switch is invisible to callers.  Deletion (:meth:`ProbeClassTable.discard`)
is supported through tombstones: a deleted slot keeps longer probe chains
intact and is reused by later insertions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ProbeClassTable", "DENSE_STATE_LIMIT"]

#: Default representation threshold: state counts up to this stay on the
#: dense matrix (2048² int8 = 4 MiB); larger codecs switch to the hash
#: table.  The old implementation capped the dense matrix at 8192 states
#: (64 MiB) and had nothing beyond it.
DENSE_STATE_LIMIT = 2048

#: 64-bit odd multiplier (golden-ratio constant) for multiplicative hashing.
_MIX = 0x9E3779B97F4A7C15
_WORD = 0xFFFF_FFFF_FFFF_FFFF

#: Slot markers in the key array.  Pair keys are always non-negative, so
#: negative sentinels can never collide with a real key.
_EMPTY = -1
_TOMBSTONE = -2

#: Grow the hash table when (live + tombstone) slots exceed this fraction.
_MAX_LOAD = 0.6


class ProbeClassTable:
    """Pair-code → probe-class byte map with a dense fast path.

    Parameters
    ----------
    key_bits:
        Bit width of one state code inside the packed pair key; must match
        the engine's packing (``_CODE_BITS``).
    dense_limit:
        Largest codec size served by the dense matrix; beyond it the table
        migrates (once, irreversibly) to the hashed representation.
    initial_hash_capacity:
        Slot count of the freshly migrated hash table (rounded up as needed
        to respect the load factor); always a power of two.
    """

    __slots__ = (
        "_key_bits", "_dense_limit", "_dense",
        "_keys", "_values", "_mask", "_shift", "_live", "_used",
    )

    def __init__(
        self,
        key_bits: int = 21,
        dense_limit: int = DENSE_STATE_LIMIT,
        initial_hash_capacity: int = 1 << 13,
    ):
        if dense_limit < 0:
            raise ValueError("dense_limit must be non-negative")
        self._key_bits = int(key_bits)
        self._dense_limit = int(dense_limit)
        #: Dense (cap × cap) int8 matrix, or ``None`` once hashed.
        self._dense: Optional[np.ndarray] = None
        #: Open-addressing arrays (``None`` while dense).
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._mask = 0
        self._shift = 64
        self._live = 0  # slots holding a real entry
        self._used = 0  # slots that are not EMPTY (live + tombstones)
        if self._dense_limit == 0:
            self._init_hash(int(initial_hash_capacity))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The active representation: ``"dense"`` or ``"hashed"``."""
        return "dense" if self._keys is None else "hashed"

    @property
    def size(self) -> int:
        """Number of stored pair entries."""
        if self._keys is not None:
            return self._live
        if self._dense is None:
            return 0
        return int(np.count_nonzero(self._dense != _EMPTY))

    @property
    def capacity(self) -> int:
        """States covered (dense) or hash slots allocated (hashed)."""
        if self._keys is not None:
            return len(self._keys)
        return 0 if self._dense is None else self._dense.shape[0]

    def _key(self, a: int, b: int) -> int:
        return (a << self._key_bits) | b

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def ensure_capacity(self, states: int) -> None:
        """Make the table able to store pairs of codes ``< states``.

        Dense tables grow in power-of-two steps up to ``dense_limit``
        states; the first request beyond the limit migrates every stored
        entry into the hash table.  Hashed tables accept any code, so the
        call becomes a no-op after migration.
        """
        if self._keys is not None:
            return
        if states > self._dense_limit:
            self._migrate_to_hash()
            return
        current = 0 if self._dense is None else self._dense.shape[0]
        if current >= states:
            return
        new_cap = 256
        while new_cap < states:
            new_cap *= 2
        new_cap = min(new_cap, self._dense_limit)
        grown = np.full((new_cap, new_cap), _EMPTY, dtype=np.int8)
        if current:
            grown[:current, :current] = self._dense
        self._dense = grown

    def _init_hash(self, capacity: int) -> None:
        size = 8
        while size < capacity:
            size *= 2
        self._keys = np.full(size, _EMPTY, dtype=np.int64)
        self._values = np.full(size, _EMPTY, dtype=np.int8)
        self._mask = size - 1
        self._shift = 64 - size.bit_length() + 1  # 64 - log2(size)
        self._live = 0
        self._used = 0

    def _migrate_to_hash(self) -> None:
        dense = self._dense
        entries = None
        needed = 1 << 13
        if dense is not None:
            rows, cols = np.nonzero(dense != _EMPTY)
            entries = (
                (rows.astype(np.int64) << self._key_bits) | cols,
                dense[rows, cols],
            )
            needed = max(needed, int(len(rows) / _MAX_LOAD) + 1)
        self._init_hash(needed)
        self._dense = None
        if entries is not None:
            self._bulk_insert(*entries)

    def _grow_hash(self) -> None:
        old_keys = self._keys
        old_values = self._values
        live = np.flatnonzero(old_keys >= 0)
        self._init_hash(max(len(old_keys) * 2, 8))
        self._bulk_insert(old_keys[live], old_values[live])

    def _bulk_insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert many *distinct* keys into a freshly initialized table.

        Vectorized counterpart of :meth:`_set_key` for migration and
        rehashing (where a scalar Python loop over up to millions of
        entries would stall the engine mid-run): each round computes every
        pending key's current slot, lets the first pending key per *empty*
        slot claim it, and advances the rest one slot.  Load factor is
        pre-sized by the callers, so no growth happens mid-insert.
        """
        table_keys = self._keys
        table_values = self._values
        mask = self._mask
        mixed = keys.astype(np.uint64) * np.uint64(_MIX)
        index = (mixed >> np.uint64(self._shift)).astype(np.int64)
        keys = keys.astype(np.int64)
        while len(keys):
            empty = table_keys[index] == _EMPTY
            # One winner per slot: np.unique returns the first occurrence
            # of each distinct target, preserving probe order for the rest.
            _slots, first = np.unique(index, return_index=True)
            winner = np.zeros(len(index), dtype=bool)
            winner[first] = True
            place = winner & empty
            placed = int(np.count_nonzero(place))
            if placed:
                table_keys[index[place]] = keys[place]
                table_values[index[place]] = values[place]
                self._live += placed
                self._used += placed
                rest = ~place
                keys = keys[rest]
                values = values[rest]
                index = index[rest]
            index = (index + 1) & mask

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def set(self, a: int, b: int, value: int) -> None:
        """Store the probe class of the ordered code pair ``(a, b)``.

        Dense callers must have called :meth:`ensure_capacity` for the
        codec size first (the engine does, on every tabulation).
        """
        if self._keys is None:
            self._dense[a, b] = value
            return
        self._set_key(self._key(a, b), value)

    def _set_key(self, key: int, value: int) -> None:
        if self._used + 1 > _MAX_LOAD * (self._mask + 1):
            self._grow_hash()
        keys = self._keys
        mask = self._mask
        index = ((key * _MIX) & _WORD) >> self._shift
        first_tombstone = -1
        while True:
            stored = keys[index]
            if stored == key:
                self._values[index] = value
                return
            if stored == _EMPTY:
                if first_tombstone >= 0:
                    index = first_tombstone
                else:
                    self._used += 1
                keys[index] = key
                self._values[index] = value
                self._live += 1
                return
            if stored == _TOMBSTONE and first_tombstone < 0:
                first_tombstone = index
            index = (index + 1) & mask

    def bulk_set(self, cu: np.ndarray, cv: np.ndarray, values) -> None:
        """Store the probe classes of many *distinct* code pairs at once.

        This is the persisted-warm load path: a table-store merge arrives
        as parallel code/class arrays, and inserting them one scalar
        :meth:`set` at a time would dominate the load.  Dense tables take
        a single fancy-index scatter; a *fresh* hashed table takes the
        vectorized :meth:`_bulk_insert`; a hashed table that already holds
        entries falls back to scalar upserts (``_bulk_insert`` requires
        keys absent from the table).  Callers guarantee the pairs are
        distinct — the table-store merge dedups before calling.
        """
        count = len(cu)
        if count == 0:
            return
        cu = np.asarray(cu, dtype=np.int64)
        cv = np.asarray(cv, dtype=np.int64)
        values = np.asarray(values, dtype=np.int8)
        if self._keys is None:
            needed = int(max(cu.max(), cv.max())) + 1
            self.ensure_capacity(needed)
            if self._keys is None:
                self._dense[cu, cv] = values
                return
        keys = (cu << self._key_bits) | cv
        if self._live == 0 and self._used == 0:
            needed = int(count / _MAX_LOAD) + 1
            if needed > self._mask + 1:
                self._init_hash(needed)
            self._bulk_insert(keys, values)
            return
        for key, value in zip(keys.tolist(), values.tolist()):
            self._set_key(int(key), int(value))

    def discard(self, a: int, b: int) -> bool:
        """Remove the entry for ``(a, b)`` if present; returns whether it was.

        Hashed entries are tombstoned (the slot stays occupied so longer
        probe chains keep resolving) and reused by later insertions.
        """
        if self._keys is None:
            if self._dense is None or a >= self._dense.shape[0] or b >= self._dense.shape[0]:
                return False
            present = self._dense[a, b] != _EMPTY
            self._dense[a, b] = _EMPTY
            return bool(present)
        key = self._key(a, b)
        keys = self._keys
        mask = self._mask
        index = ((key * _MIX) & _WORD) >> self._shift
        while True:
            stored = keys[index]
            if stored == key:
                keys[index] = _TOMBSTONE
                self._values[index] = _EMPTY
                self._live -= 1
                return True
            if stored == _EMPTY:
                return False
            index = (index + 1) & mask

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, a: int, b: int) -> int:
        """The stored class of ``(a, b)``, or ``-1`` when unknown."""
        return int(
            self.lookup(
                np.asarray([a], dtype=np.int64), np.asarray([b], dtype=np.int64)
            )[0]
        )

    def lookup(self, cu: np.ndarray, cv: np.ndarray) -> np.ndarray:
        """Probe classes for a batch of code pairs; unknown entries read -1.

        Dense: one flattened gather.  Hashed: batched linear probing — each
        round gathers the slot under every still-unresolved key, resolves
        hits and empty-slot misses, and advances the rest one slot.  At the
        enforced load factor the expected number of rounds is O(1), so a
        whole chunk costs a handful of vector operations.
        """
        if self._keys is None:
            if self._dense is None:
                return np.full(len(cu), _EMPTY, dtype=np.int8)
            cap = self._dense.shape[0]
            if len(cu) and (int(cu.max()) >= cap or int(cv.max()) >= cap):
                # Codes beyond the allocated matrix are simply unknown
                # (callers that ensure_capacity first never hit this).
                result = np.full(len(cu), _EMPTY, dtype=np.int8)
                in_range = (cu < cap) & (cv < cap)
                result[in_range] = self._dense[cu[in_range], cv[in_range]]
                return result
            return self._dense.reshape(-1).take(cu * cap + cv)
        result = np.full(len(cu), _EMPTY, dtype=np.int8)
        if self._live == 0 and self._used == 0:
            return result
        keys = (cu.astype(np.int64) << self._key_bits) | cv
        mixed = keys.astype(np.uint64) * np.uint64(_MIX)
        index = (mixed >> np.uint64(self._shift)).astype(np.int64)
        active = np.arange(len(keys), dtype=np.int64)
        table_keys = self._keys
        mask = self._mask
        while len(active):
            stored = table_keys[index]
            hit = stored == keys
            if hit.any():
                result[active[hit]] = self._values[index[hit]]
            unresolved = ~(hit | (stored == _EMPTY))
            if not unresolved.any():
                break
            active = active[unresolved]
            keys = keys[unresolved]
            index = (index[unresolved] + 1) & mask
        return result
