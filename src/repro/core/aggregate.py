"""Event-driven ("aggregate") simulation of population protocols.

The paper's protocols are *silent*: once most agents are ranked, the vast
majority of interactions are no-ops (two ranked agents with distinct ranks
never change state).  Simulating each of the ``Θ(n² log n)`` interactions
individually is wasteful — and, in pure Python, prohibitively slow for the
population sizes of the paper's Figure 3 (up to ``n = 8192``).

:class:`EventDrivenSimulator` exploits a standard exactness-preserving trick:
between two *productive* interactions the configuration does not change, so
the number of consecutive no-op interactions is geometrically distributed
with success probability ``(# productive ordered pairs) / (n·(n-1))``, and
the productive interaction itself is chosen with probability proportional to
how many ordered pairs realize each productive *event class*.  Subclasses
describe their dynamics in terms of event classes over group counts (e.g.
"the unaware leader meets a phase agent"); the base class samples waiting
times and event classes.  The resulting trajectory has exactly the same
distribution as the agent-level simulation whenever the subclass's event
decomposition is faithful — which the test suite checks against the
reference :class:`~repro.core.simulation.Simulator` on small populations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from math import log1p
from typing import Callable, Dict, Optional

import numpy as np

from .errors import SimulationLimitExceeded
from .rng import RandomState, make_rng

__all__ = ["EventDrivenSimulator", "AggregateResult"]


@dataclass
class AggregateResult:
    """Outcome of an event-driven run.

    Attributes
    ----------
    converged:
        Whether :meth:`EventDrivenSimulator.is_done` held at the end.
    interactions:
        Total number of (mostly skipped) interactions accounted for.
    events:
        Number of productive events actually applied.
    milestones:
        Mapping from milestone name to the interaction count at which it was
        first reached (see :meth:`EventDrivenSimulator.run`).
    """

    converged: bool
    interactions: int
    events: int
    milestones: Dict[str, int]


class EventDrivenSimulator(abc.ABC):
    """Base class for exact event-driven simulations on group counts.

    Subclasses maintain whatever aggregate state they need (group counts,
    the leader's current rank, …) and implement three methods:

    * :meth:`event_weights` — for the current aggregate state, the number of
      *ordered* agent pairs realizing each productive event class;
    * :meth:`apply_event` — apply one occurrence of a named event class;
    * :meth:`is_done` — whether the target configuration has been reached.
    """

    #: Number of uniforms drawn per refill of the sampling buffer.
    _UNIFORM_BATCH = 4096

    def __init__(self, n: int, random_state: RandomState = None):
        if n < 2:
            raise ValueError(f"population size must be at least 2, got {n}")
        self._n = int(n)
        self._rng = make_rng(random_state)
        self._interactions = 0
        self._events = 0
        self._total_pairs = self._n * (self._n - 1)
        # Uniform draws are consumed two per event; batching them into one
        # vectorized ``rng.random(k)`` call amortizes the per-call overhead
        # of scalar generator draws (~0.4 us each) across the event loop.
        self._uniforms: list = []
        self._uniform_pos = 0

    @property
    def n(self) -> int:
        """Population size."""
        return self._n

    @property
    def rng(self) -> np.random.Generator:
        """The random generator driving the event process."""
        return self._rng

    @property
    def interactions(self) -> int:
        """Interactions accounted for so far (including skipped no-ops)."""
        return self._interactions

    @property
    def events(self) -> int:
        """Productive events applied so far."""
        return self._events

    @property
    def total_ordered_pairs(self) -> int:
        """``n·(n-1)``, the number of possible ordered interactions."""
        return self._total_pairs

    # ------------------------------------------------------------------
    # Dynamics specification (subclass responsibility)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def event_weights(self) -> Dict[str, float]:
        """Ordered-pair counts per productive event class.

        The values must be non-negative; event classes with weight zero are
        ignored.  The sum of all weights divided by ``n·(n-1)`` is the
        per-interaction probability that *something* happens.
        """

    @abc.abstractmethod
    def apply_event(self, name: str) -> None:
        """Apply one occurrence of event class ``name`` to the aggregate state."""

    @abc.abstractmethod
    def is_done(self) -> bool:
        """Whether the simulated protocol has reached its target."""

    # ------------------------------------------------------------------
    # Driving loop
    # ------------------------------------------------------------------
    def step_event(self, limit: Optional[int] = None) -> Optional[str]:
        """Advance to (and apply) the next productive event.

        Returns the applied event name, or ``None`` when no event class has
        positive weight (a genuinely dead configuration) or when the sampled
        waiting time would carry ``interactions`` past ``limit`` — in that
        case the interaction counter is clamped to ``limit`` and the event is
        *not* applied, so budget-bounded runs never overshoot.
        """
        weights = self.event_weights()
        total = 0.0
        for weight in weights.values():
            if weight > 0.0:
                total += weight
        if total == 0.0:
            return None
        success_probability = total / self._total_pairs
        if success_probability > 1.0:
            raise SimulationLimitExceeded(
                "event weights exceed the number of ordered pairs "
                f"({total} > {self._total_pairs}); "
                "the event decomposition is inconsistent"
            )
        uniforms = self._uniforms
        position = self._uniform_pos
        if position + 2 > len(uniforms):
            uniforms = self._uniforms = self._rng.random(self._UNIFORM_BATCH).tolist()
            position = 0
        # Number of interactions up to and including the productive one:
        # exact geometric via inverse transform, ``1 + floor(ln(1-U)/ln(1-p))``
        # (cheaper than a scalar ``rng.geometric`` call in the event loop).
        if success_probability >= 1.0:
            waiting = 1
        else:
            waiting = 1 + int(
                log1p(-uniforms[position]) / log1p(-success_probability)
            )
            position += 1
        if limit is not None and self._interactions + waiting > limit:
            self._uniform_pos = position
            self._interactions = limit
            return None
        self._interactions += waiting

        # Inverse-transform sampling over the (unnormalized) weights: one
        # uniform draw and a running cumulative sum replace the per-event
        # probability-array rebuild that ``rng.choice(p=...)`` would require.
        threshold = uniforms[position] * total
        self._uniform_pos = position + 1
        cumulative = 0.0
        chosen = None
        for name, weight in weights.items():
            if weight > 0.0:
                chosen = name  # last positive class absorbs the u == total edge
                cumulative += weight
                if threshold < cumulative:
                    break
        self.apply_event(chosen)
        self._events += 1
        return chosen

    def run(
        self,
        max_interactions: int,
        milestones: Optional[Dict[str, Callable[[], bool]]] = None,
    ) -> AggregateResult:
        """Run until :meth:`is_done`, a dead configuration, or the budget.

        Parameters
        ----------
        max_interactions:
            Upper bound on the number of interactions to account for.
        milestones:
            Optional named predicates over the aggregate state; the result
            records the interaction count at which each first became true.
            Used by the Figure 3 experiment ("half of the agents ranked").
        """
        milestones = milestones or {}
        reached: Dict[str, int] = {}
        budget_end = self._interactions + max_interactions

        def check_milestones() -> None:
            for name, predicate in milestones.items():
                if name not in reached and predicate():
                    reached[name] = self._interactions

        if milestones:
            check_milestones()
        while not self.is_done() and self._interactions < budget_end:
            applied = self.step_event(limit=budget_end)
            if applied is None:
                break
            if milestones:
                check_milestones()
        return AggregateResult(
            converged=self.is_done(),
            interactions=self._interactions,
            events=self._events,
            milestones=reached,
        )
