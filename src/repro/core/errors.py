"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so downstream users can catch library failures with a
single ``except`` clause without swallowing unrelated programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An initial or intermediate configuration is malformed.

    Raised, for example, when a configuration does not have exactly ``n``
    agent states, or when a workload generator is asked for an impossible
    initial configuration (e.g. more ranked agents than the population size).
    """


class ProtocolError(ReproError):
    """A protocol was constructed or used with invalid parameters.

    Typical causes are a non-positive population size, inconsistent tuning
    constants (e.g. ``c_wait <= 0``), or a transition function observing a
    state that the protocol can never produce and cannot interpret.
    """


class SimulationLimitExceeded(ReproError):
    """A simulation hit its interaction budget before converging.

    The offending :class:`~repro.core.simulation.SimulationResult` is attached
    as :attr:`result` so callers can still inspect the partial run.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result


class CodecError(ReproError):
    """A state could not be encoded into a dense integer code.

    Raised when a protocol's state objects expose neither ``as_tuple()`` nor
    dataclass fields, or when a state-space enumeration exceeds its budget
    (see :class:`StateSpaceTooLarge`).
    """


class StateSpaceTooLarge(CodecError):
    """A state-space enumeration exceeded its ``max_states`` budget.

    The array engine catches this to fall back from the precompiled dense
    transition tables to the lazily tabulated kernel path.
    """


class RandomnessConsumed(ReproError):
    """A transition consumed randomness while being tabulated.

    Transition tables cache ``(state, state) → (state', state'')`` pairs, which
    is only sound for transitions that are deterministic given the two input
    states.  The array engine catches this to fall back to the object path,
    which passes a real generator through to the protocol.
    """


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""
