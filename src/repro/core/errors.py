"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so downstream users can catch library failures with a
single ``except`` clause without swallowing unrelated programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An initial or intermediate configuration is malformed.

    Raised, for example, when a configuration does not have exactly ``n``
    agent states, or when a workload generator is asked for an impossible
    initial configuration (e.g. more ranked agents than the population size).
    """


class ProtocolError(ReproError):
    """A protocol was constructed or used with invalid parameters.

    Typical causes are a non-positive population size, inconsistent tuning
    constants (e.g. ``c_wait <= 0``), or a transition function observing a
    state that the protocol can never produce and cannot interpret.
    """


class SimulationLimitExceeded(ReproError):
    """A simulation hit its interaction budget before converging.

    The offending :class:`~repro.core.simulation.SimulationResult` is attached
    as :attr:`result` so callers can still inspect the partial run.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""
