#!/usr/bin/env python3
"""Quickstart: rank a population with the paper's two protocols.

Runs the non-self-stabilizing ``SpaceEfficientRanking`` and the
self-stabilizing ``StableRanking`` on a small population, prints how long
each took (in interactions, normalized by n²) and shows the resulting
ranking and the derived leader.

Usage:
    python examples/quickstart.py [n]
"""

import sys

from repro import SpaceEfficientRanking, StableRanking, Simulator, make_simulator


def run_protocol(protocol, seed, budget_factor=2000, engine="reference"):
    """Run ``protocol`` to convergence on the selected simulation engine.

    ``engine="reference"`` is the agent-level ground-truth simulator;
    ``engine="array"`` is the vectorized engine that simulates the same
    process on compiled transition tables plus a protocol-provided
    struct-of-arrays kernel for the write-heavy regimes (pass the same
    explicit ``convergence_interval`` to both for bit-identical same-seed
    runs; see docs/engines.md for the engine ladder).
    """
    simulator = make_simulator(
        protocol,
        engine=engine,
        random_state=seed,
        convergence_interval=protocol.n,
    )
    result = simulator.run(max_interactions=budget_factor * protocol.n**2)
    return simulator, result


def describe(result):
    config = result.configuration
    n = config.population_size
    leader = config.leader_index()
    return (
        f"converged={result.converged}  "
        f"interactions={result.interactions} ({result.interactions / n**2:.1f} n²)  "
        f"leader=agent #{leader}"
    )


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    print(f"Population size n = {n}\n")

    print("1) SpaceEfficientRanking (Theorem 1: n + Θ(log n) states, O(n² log n) time)")
    protocol = SpaceEfficientRanking(n)
    _, result = run_protocol(protocol, seed=1)
    print("   ", describe(result))
    print(f"    state-space accounting: {protocol.state_space_size()} states "
          f"({protocol.overhead_states()} overhead states)\n")

    print("2) StableRanking (Theorem 2: n + O(log² n) states, self-stabilizing)")
    protocol = StableRanking(n)
    _, result = run_protocol(protocol, seed=2)
    print("   ", describe(result))
    print(f"    state-space accounting: {protocol.state_space_size()} states "
          f"({protocol.overhead_states()} overhead states)")

    ranks = sorted(result.configuration.ranks())
    print(f"    final ranks form a permutation of 1..{n}: {ranks == list(range(1, n + 1))}")

    print("\n3) The same StableRanking run on the vectorized array engine")
    array_simulator, array_result = run_protocol(
        StableRanking(n), seed=2, engine="array"
    )
    print("   ", describe(array_result))
    print(
        "    identical trajectory to the reference run above: "
        f"{array_result.interactions == result.interactions}"
    )
    soa_share = array_simulator.soa_interactions / max(array_result.interactions, 1)
    print(
        f"    struct-of-arrays kernel handled {soa_share:.0%} of the "
        f"interactions (mode: {array_simulator.mode})"
    )


if __name__ == "__main__":
    main()
