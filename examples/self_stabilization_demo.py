#!/usr/bin/env python3
"""Self-stabilization demo — the scenario behind the paper's Figure 2.

Starts ``StableRanking`` from a *corrupted* configuration: agents hold the
ranks 2 … n, rank 1 is missing, and the single unranked agent sits in the
final phase with a full liveness counter.  Nothing is obviously wrong locally
— no duplicate ranks exist — so the protocol has to *detect* the missing
rank through its liveness mechanism, reset the whole population, and rebuild
the ranking from scratch.

The script prints the ranked-agent count and the average phase of the
unranked agents over time (the two series of Figure 2).

Usage:
    python examples/self_stabilization_demo.py [n]
"""

import sys

from repro.experiments import (
    Study,
    figure2_result_from_rows,
    figure2_specs,
    format_figure2,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96

    print(f"Running the Figure 2 scenario for n = {n} (this takes a moment)…\n")
    # One declarative spec, one study; the same scenario is also available
    # as `python -m repro run figure2 --n <n>` with a persistent store.
    rows = Study(figure2_specs(n_values=(n,)), name="figure2-demo").run()
    result = figure2_result_from_rows(rows)
    print(format_figure2(result))

    reset_point = result.normalized_interactions[
        result.ranked_agents.index(min(result.ranked_agents))
    ]
    print(
        f"\nThe population sat on the corrupted ranking until ≈ {reset_point:.0f} n² "
        f"interactions, reset, and had rebuilt a full ranking after "
        f"{result.total_interactions / n**2:.0f} n² interactions in total."
    )


if __name__ == "__main__":
    main()
