#!/usr/bin/env python3
"""Self-stabilizing leader election via ranking.

The paper's motivation for ranking is that it immediately yields
self-stabilizing leader election: declare the agent with rank 1 the leader.
This example corrupts a running system twice — first by duplicating some
ranks, then by erasing the leader's rank — and shows that the population
re-elects a unique leader each time.

Usage:
    python examples/leader_election.py [n]
"""

import sys

from repro import Simulator, StableRanking
from repro.experiments import duplicate_rank_configuration

BUDGET_FACTOR = 3000


def leader_of(configuration):
    index = configuration.leader_index()
    return f"agent #{index}" if index is not None else "none"


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 48

    print(f"Self-stabilizing leader election with n = {n} agents\n")

    # Phase 1: start from a transient fault that duplicated some ranks.
    protocol = StableRanking(n)
    configuration = duplicate_rank_configuration(n, duplicates=3, random_state=1)
    print(f"initial configuration: {len(configuration.duplicate_ranks())} duplicated "
          f"rank value(s), leader output = {leader_of(configuration)}")
    simulator = Simulator(protocol, configuration=configuration, random_state=2)
    result = simulator.run(max_interactions=BUDGET_FACTOR * n * n)
    print(f"after {result.interactions / n**2:.1f} n² interactions: "
          f"valid ranking = {result.converged}, leader = {leader_of(result.configuration)}\n")

    # Phase 2: the leader crashes and loses its rank.
    configuration = result.configuration
    leader_index = configuration.leader_index()
    configuration[leader_index].clear()
    configuration[leader_index].coin = 0
    configuration[leader_index].phase = 1
    configuration[leader_index].alive_count = protocol.l_max
    print(f"fault injected: the leader (agent #{leader_index}) lost its rank")

    protocol_after = StableRanking(n)
    simulator = Simulator(protocol_after, configuration=configuration, random_state=3)
    result = simulator.run(max_interactions=BUDGET_FACTOR * n * n)
    print(f"after another {result.interactions / n**2:.1f} n² interactions: "
          f"valid ranking = {result.converged}, leader = {leader_of(result.configuration)}")
    print("\nA unique leader exists again — rank 1 identifies it.")


if __name__ == "__main__":
    main()
