#!/usr/bin/env python3
"""Compare the paper's protocol against the baseline design points.

Three self-stabilizing designs occupy different corners of the state/time
trade-off:

* Cai et al. style:      n states,           Θ(n³) interactions;
* Burman et al. style:   n + Θ(n) states,    Θ(n² log n) interactions;
* this paper:            n + O(log² n) states, Θ(n² log n) interactions.

The script measures stabilization times from a fresh start for a few
population sizes and prints them next to each protocol's overhead-state
count.

Usage:
    python examples/baseline_comparison.py [n1 n2 ...]
"""

import sys

from repro.experiments import (
    Study,
    comparison_result_from_rows,
    comparison_specs,
    format_comparison,
)


def main() -> None:
    n_values = [int(arg) for arg in sys.argv[1:]] or [16, 32, 64]

    print("Running the comparison (this takes a minute for larger n)…\n")
    # One spec per protocol family; also available (with parallel seed
    # fan-out and a result store) as `python -m repro run comparison`.
    specs = comparison_specs(
        n_values=n_values,
        repetitions=3,
        workload="fresh",
        max_interactions_factor=1500,
    )
    rows = Study(specs, name="comparison-demo").run()
    result = comparison_result_from_rows(rows, workload="fresh")
    print(format_comparison(result))

    print(
        "\nReading guide: 'mean_over_n2' grows roughly linearly in n for the Cai\n"
        "baseline (cubic total time) but only logarithmically for the other two;\n"
        "'overhead_states' is what the paper shrinks from Θ(n) to O(log² n)."
    )


if __name__ == "__main__":
    main()
