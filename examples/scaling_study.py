#!/usr/bin/env python3
"""Scaling study — the scenario behind the paper's Figure 3.

Uses the exact event-driven engine to measure how many interactions
``SpaceEfficientRanking`` needs to rank the fractions 1/2, 3/4, 7/8 and 15/16
of the population, across a range of population sizes.  The normalized times
are flat in n (ranking a constant fraction costs Θ(n²) interactions), and the
full stabilization time scales as Θ(n² log n).

Usage:
    python examples/scaling_study.py [max_n] [repetitions]
"""

import sys

from repro.experiments import format_figure3, format_scaling, run_figure3, run_scaling


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    repetitions = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    n_values = [n for n in (128, 256, 512, 1024, 2048, 4096, 8192) if n <= max_n]

    print("Time to rank constant fractions of the population (Figure 3):\n")
    figure3 = run_figure3(n_values=n_values, repetitions=repetitions, engine="aggregate")
    print(format_figure3(figure3))

    print("\nFull stabilization time, normalized by n² log₂ n (Theorem 1):\n")
    scaling = run_scaling(n_values=n_values, repetitions=repetitions, engine="aggregate")
    print(format_scaling(scaling))


if __name__ == "__main__":
    main()
