#!/usr/bin/env python3
"""Scaling study — the scenario behind the paper's Figure 3.

Uses the exact event-driven engine to measure how many interactions
``SpaceEfficientRanking`` needs to rank the fractions 1/2, 3/4, 7/8 and 15/16
of the population, across a range of population sizes.  The normalized times
are flat in n (ranking a constant fraction costs Θ(n²) interactions), and the
full stabilization time scales as Θ(n² log n).

The study closes with an engine face-off on the self-stabilizing
``StableRanking`` protocol: the same full-convergence sweep is executed on
the agent-level reference simulator and on the vectorized array engine
(which shares its transition tabulation across the repetitions), and the
resulting throughput table shows the speedup per population size.

Usage:
    python examples/scaling_study.py [max_n] [repetitions]
"""

import sys
import time

from repro import ArraySimulator, EngineCache, Simulator, StableRanking
from repro.experiments import (
    Study,
    figure3_result_from_rows,
    figure3_specs,
    format_figure3,
    format_scaling,
    scaling_result_from_rows,
    scaling_specs,
)
from repro.experiments.ascii_plot import format_table


def engine_speedup_table(n_values, repetitions, budget_factor=4000):
    """Run the same StableRanking sweep on both engines; tabulate speedups."""
    rows = []
    for n in n_values:
        timings = {}
        for engine in ("reference", "array"):
            cache = EngineCache()
            interactions = 0
            elapsed = 0.0
            for seed in range(repetitions):
                if engine == "array":
                    simulator = ArraySimulator(
                        StableRanking(n), random_state=seed, cache=cache
                    )
                else:
                    simulator = Simulator(StableRanking(n), random_state=seed)
                start = time.perf_counter()
                result = simulator.run(max_interactions=budget_factor * n * n)
                elapsed += time.perf_counter() - start
                interactions += result.interactions
            timings[engine] = interactions / elapsed
        rows.append(
            {
                "n": n,
                "reference_per_sec": round(timings["reference"]),
                "array_per_sec": round(timings["array"]),
                "speedup": round(timings["array"] / timings["reference"], 1),
            }
        )
    return rows


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    repetitions = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    n_values = [n for n in (128, 256, 512, 1024, 2048, 4096, 8192) if n <= max_n]

    # Both sweeps are declarative studies; the same presets run from the
    # command line as `python -m repro run figure3` / `... run scaling`,
    # with --jobs for parallel seeds and --out for a resumable store.
    print("Time to rank constant fractions of the population (Figure 3):\n")
    figure3 = figure3_result_from_rows(
        Study(
            figure3_specs(
                n_values=n_values, repetitions=repetitions, engine="aggregate"
            ),
            name="figure3-study",
        ).run()
    )
    print(format_figure3(figure3))

    print("\nFull stabilization time, normalized by n² log₂ n (Theorem 1):\n")
    scaling = scaling_result_from_rows(
        Study(
            scaling_specs(
                n_values=n_values, repetitions=repetitions, engine="aggregate"
            ),
            name="scaling-study",
        ).run()
    )
    print(format_scaling(scaling))

    # The agent-level engines are exact per-interaction simulations, so the
    # face-off uses smaller populations than the aggregate sweep above.
    engine_ns = [n for n in (64, 128, 256) if n <= max_n]
    engine_reps = min(repetitions, 3)
    print(
        "\nStableRanking throughput, reference vs. array engine "
        f"({engine_reps} full runs per n, shared tabulation):\n"
    )
    print(format_table(engine_speedup_table(engine_ns, engine_reps)))


if __name__ == "__main__":
    main()
