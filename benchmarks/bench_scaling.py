"""Benchmark E3 — stabilization-time scaling of ``SpaceEfficientRanking``.

Theorem 1 support: the full stabilization time divided by ``n² log₂ n`` must
stay roughly constant across population sizes.  Results go to
``results/scaling.csv`` / ``scaling.txt``.
"""

from repro.experiments.recording import write_csv
from repro.experiments.scaling import format_scaling, run_scaling

DEFAULT_SIZES = (128, 256, 512, 1024)
PAPER_SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)


def test_scaling_is_n2_logn(benchmark, results_dir, paper_scale):
    n_values = PAPER_SIZES if paper_scale else DEFAULT_SIZES
    repetitions = 50 if paper_scale else 15

    def run():
        return run_scaling(
            n_values=n_values,
            repetitions=repetitions,
            engine="aggregate",
            random_state=7,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = result.rows()
    write_csv(results_dir / "scaling.csv", rows)
    (results_dir / "scaling.txt").write_text(format_scaling(result))

    normalized = [row["mean_over_n2_logn"] for row in rows]
    benchmark.extra_info["normalized_min"] = round(min(normalized), 3)
    benchmark.extra_info["normalized_max"] = round(max(normalized), 3)
    # Θ(n² log n): the normalized values stay within a narrow constant band.
    assert max(normalized) / min(normalized) < 2.0
