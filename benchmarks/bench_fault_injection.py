"""Benchmark E6 — recovery from injected transient faults (Theorem 2 support).

Measures how many interactions ``StableRanking`` needs to return to a clean
legal configuration after duplicate-rank faults, a lost rank, or a fully
adversarial state assignment.  Results go to ``results/fault_injection.csv``.
"""

from repro.experiments.fault_injection import (
    format_fault_injection,
    run_fault_injection,
)
from repro.experiments.recording import write_csv


def test_fault_recovery_times(benchmark, results_dir, paper_scale):
    n_values = (32, 64) if paper_scale else (32,)
    repetitions = 5 if paper_scale else 3

    def run():
        return run_fault_injection(
            n_values=n_values,
            repetitions=repetitions,
            max_interactions_factor=3000,
            random_state=5,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = result.rows()
    write_csv(results_dir / "fault_injection.csv", rows)
    (results_dir / "fault_injection.txt").write_text(format_fault_injection(result))

    assert all(row["recovered_fraction"] == 1.0 for row in rows)
    for row in rows:
        benchmark.extra_info[f"{row['fault']}_n{row['n']}_over_n2"] = round(
            row["mean_over_n2"], 1
        )
