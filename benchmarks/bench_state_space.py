"""Benchmark E4 — state-space accounting.

Two complementary views of the paper's headline (the overhead-state count):

* the *predicted* overhead per protocol family across population sizes
  (``Θ(log n)`` vs ``O(log² n)`` vs ``Θ(n)``), and
* the *observed* number of distinct states actually used in a run of each
  implemented protocol (measured by instrumenting the reference simulator).

Results go to ``results/state_space.csv`` / ``state_space_observed.csv``.
"""

from repro.analysis.state_space import measure_state_usage, overhead_state_table
from repro.baselines.cai_ranking import CaiRanking
from repro.experiments.ascii_plot import format_table
from repro.experiments.recording import write_csv
from repro.protocols.ranking.space_efficient import SpaceEfficientRanking
from repro.protocols.ranking.stable_ranking import StableRanking

PREDICTED_SIZES = (64, 256, 1024, 4096, 16384, 65536)


def test_predicted_overhead_state_table(benchmark, results_dir):
    def run():
        return overhead_state_table(PREDICTED_SIZES)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_csv(results_dir / "state_space.csv", rows)
    (results_dir / "state_space.txt").write_text(format_table(rows))

    largest = rows[-1]
    benchmark.extra_info["overhead_at_65536"] = {
        key: value for key, value in largest.items() if key != "n"
    }
    # The ordering the paper's related-work table implies.
    for row in rows:
        assert row["cai_ranking"] == 0
        assert row["space_efficient_ranking"] < row["stable_ranking"]
        assert row["stable_ranking"] < row["burman_style_ranking"]
    # Exponential improvement over the Burman-style baseline at large n.
    assert largest["burman_style_ranking"] / largest["stable_ranking"] > 10


def test_observed_state_usage(benchmark, results_dir, paper_scale):
    n = 128 if paper_scale else 64

    def run():
        reports = []
        reports.append(
            measure_state_usage(
                SpaceEfficientRanking(n),
                max_interactions=600 * n * n,
                random_state=1,
                ignore_fields=("le_level", "le_count"),
            )
        )
        reports.append(
            measure_state_usage(
                StableRanking(n), max_interactions=4000 * n * n, random_state=1
            )
        )
        reports.append(
            measure_state_usage(
                CaiRanking(min(n, 32)),
                max_interactions=200 * min(n, 32) ** 3,
                random_state=1,
            )
        )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [report.as_dict() for report in reports]
    write_csv(results_dir / "state_space_observed.csv", rows)

    space_efficient, stable, cai = reports
    assert all(report.converged for report in reports)
    benchmark.extra_info["space_efficient_overhead"] = space_efficient.overhead_states
    benchmark.extra_info["stable_overhead"] = stable.overhead_states
    benchmark.extra_info["cai_overhead"] = cai.overhead_states
    # The non-self-stabilizing protocol uses only Θ(log n) overhead states
    # (ranking layer), the self-stabilizing one polylogarithmically many (with
    # a sizeable constant, see EXPERIMENTS.md), and the Cai baseline none.
    assert cai.overhead_states == 0
    assert space_efficient.overhead_states < stable.overhead_states
