"""Benchmark E1 — regenerate the paper's Figure 2.

``StableRanking`` with the worst-case initialization (ranks 2 … n assigned,
one phase agent with maximum liveness counter): the benchmark records the
ranked-agent count and the average phase of unranked agents over time and
writes both series to ``results/figure2.csv`` plus a rendered text version to
``results/figure2.txt``.

Default: ``n = 128``; with ``REPRO_BENCH_FULL=1``: the paper's ``n = 256``.
"""

import math

from repro.experiments.figure2 import format_figure2, run_figure2
from repro.experiments.recording import write_csv


def test_figure2_reset_and_recovery(benchmark, results_dir, paper_scale):
    n = 256 if paper_scale else 128

    def run():
        return run_figure2(n=n, random_state=2024)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    write_csv(results_dir / "figure2.csv", result.rows())
    (results_dir / "figure2.txt").write_text(format_figure2(result))

    benchmark.extra_info["n"] = n
    benchmark.extra_info["total_interactions_over_n2"] = round(
        result.total_interactions / (n * n), 2
    )
    benchmark.extra_info["resets"] = result.resets
    benchmark.extra_info["converged"] = result.converged

    # Shape checks mirroring the paper's figure: the run starts with n-1
    # ranked agents, resets (dropping the count), recovers to a full ranking,
    # and the average phase of unranked agents climbs towards ⌈log₂ n⌉.
    assert result.converged
    assert result.ranked_agents[0] == n - 1
    assert min(result.ranked_agents) < n - 1
    assert result.ranked_agents[-1] == n
    # After the reset the re-ranking walks through the phases again: the
    # average phase of the unranked agents drops (fresh agents start at
    # phase 1) and then climbs back towards ⌈log₂ n⌉ for the final agents.
    reset_index = result.ranked_agents.index(min(result.ranked_agents))
    post_reset_phases = result.average_phase[reset_index:]
    assert min(post_reset_phases) < math.log2(n) / 2
    assert max(post_reset_phases) > math.log2(n) / 2
