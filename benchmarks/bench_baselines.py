"""Benchmark E5 — ``StableRanking`` versus the baseline protocols.

Stabilization time (interactions) and overhead states for the paper's
protocol, the Cai-style ``n``-state baseline (``O(n³)`` time) and the
Burman-style ``Θ(n)``-overhead baseline (``O(n² log n)`` time), from the same
fresh starts.  Results go to ``results/baselines.csv`` / ``baselines.txt``.
"""

from repro.experiments.comparison import format_comparison, run_comparison
from repro.experiments.recording import write_csv

DEFAULT_SIZES = (16, 32, 64)
FULL_SIZES = (16, 32, 64, 128)


def test_baseline_comparison_fresh_start(benchmark, results_dir, paper_scale):
    n_values = FULL_SIZES if paper_scale else DEFAULT_SIZES
    repetitions = 5 if paper_scale else 3

    def run():
        return run_comparison(
            n_values=n_values,
            repetitions=repetitions,
            workload="fresh",
            max_interactions_factor=1200 if paper_scale else 800,
            random_state=11,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = result.rows()
    write_csv(results_dir / "baselines.csv", rows)
    (results_dir / "baselines.txt").write_text(format_comparison(result))

    # Every protocol must converge within its budget.
    assert all(row["converged_fraction"] == 1.0 for row in rows)

    # The Cai baseline's normalized time grows roughly linearly in n (Θ(n³)
    # total), while StableRanking's grows only logarithmically.
    def normalized(name):
        return {
            row["n"]: row["mean_over_n2"] for row in rows if row["protocol"] == name
        }

    cai = normalized("cai-ranking")
    stable = normalized("stable-ranking")
    n_small, n_large = min(n_values), max(n_values)
    cai_growth = cai[n_large] / cai[n_small]
    stable_growth = stable[n_large] / stable[n_small]
    benchmark.extra_info["cai_normalized_growth"] = round(cai_growth, 2)
    benchmark.extra_info["stable_normalized_growth"] = round(stable_growth, 2)
    assert cai_growth > stable_growth

    # State-count side of the trade-off: the Burman-style baseline needs at
    # least n overhead states, StableRanking only polylogarithmically many.
    burman_overhead = {
        row["n"]: row["overhead_states"]
        for row in rows
        if row["protocol"] == "burman-style-ranking"
    }
    assert all(value >= n for n, value in burman_overhead.items())
