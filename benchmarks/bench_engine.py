"""Micro-benchmarks of the simulation engines themselves.

Not a paper artifact — these measure the raw throughput of the agent-level
reference simulator, the vectorized array engine and the exact event-driven
engine, which is what makes the paper-scale sweeps feasible in Python.

Workloads come in matched reference/array pairs (same protocol, same ``n``,
same interaction budget) so ``benchmarks/run_benchmarks.py`` can compute
engine speedups from the recorded timings:

``stable_ranking_throughput``
    20k-interaction slices of a ``StableRanking`` n=128 trajectory from the
    designated initial configuration, measured on the array engine both
    with the SoA kernel (``array``) and without (``array-nokernel``).
    Both variants measure the *tabulated* steady state — the shared
    :class:`EngineCache` is pre-warmed kernel-less on the same seed, so
    the rounds exercise the warm table path rather than the one-time
    transition tabulation.  With the kernel attached, the engine's
    scalar-share dispatch routes these pre-tabulated, loop-bound chunks
    to the table path (see ``docs/engines.md``), so the two series should
    track each other; before that fold the kernel side trailed ~3x vs
    ~5x.
``stable_ranking_full_run``
    Complete runs to convergence, one fresh seed per round, with the
    tabulation shared across rounds — the shape of the paper's repeated
    experiment sweeps.  This includes every cost the engine has (novel-pair
    tabulation, write-heavy early phase), so its speedup is the most
    conservative figure.  Measured twice on the array engine: with the
    protocol-provided SoA kernel (the default) and with
    ``use_soa_kernel=False`` (tagged ``array-nokernel``), which isolates
    the kernel's contribution on the walk-bound mid-run regime.
``stable_ranking_study_cell``
    A many-seed StableRanking n=128 study cell (100 seeds under
    ``REPRO_BENCH_FULL=1``, 32 otherwise) to convergence — measured
    per-seed on the array engine (the pre-batching study behaviour, cold
    cache), as one cold lockstep batch on the batched replica engine,
    as a warm-cache batch (the amortized steady state), and as a batch in
    a *fresh process-like cache* against a populated on-disk table store
    (``array-batched-persisted-warm``) — the cold-process/warm-store path
    the persistent tabulation store exists for.  These rows back the
    batched engine's wall-clock claims in ``docs/benchmarks.md``.
``stable_ranking_tail``
    The stabilization tail (population ranked down to the last two agents),
    which dominates the ``Θ(n² log n)`` total of paper-scale runs and is
    where the array engine's bulk no-op elimination pays.
``epidemic_throughput``
    The one-way epidemic at n=256 — a protocol whose 4-state space compiles
    to complete dense ``(S × S)`` tables.
``burman_throughput`` / ``cai_throughput`` / ``token_counter_throughput``
    The three comparison baselines at n=64 (matched reference/array pairs,
    pre-warmed caches).  Burman runs on the lazy tabulated path; Cai on
    complete dense tables (its n=64 seed states exactly fit the dense
    budget — larger populations would go lazy); and the token counter —
    whose GS leader-election substrate consumes randomness — on the
    declared object fallback, so its pair documents the fallback's cost
    rather than a speedup.
"""

import os
import tempfile

import numpy as np

from repro.baselines.burman_ranking import BurmanStyleRanking
from repro.baselines.cai_ranking import CaiRanking
from repro.baselines.token_counter_ranking import TokenCounterRanking
from repro.core.array_engine import ArraySimulator, EngineCache
from repro.core.configuration import Configuration
from repro.core.simulation import Simulator
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.aggregate_space_efficient import (
    AggregateSpaceEfficientRanking,
)
from repro.protocols.ranking.stable_ranking import StableRanking

STABLE_N = 128
STABLE_INTERACTIONS = 20_000
FULL_RUN_BUDGET = 50_000_000
TAIL_INTERACTIONS = 200_000
EPIDEMIC_N = 256
EPIDEMIC_INTERACTIONS = 50_000
BASELINE_N = 64
BASELINE_INTERACTIONS = 20_000


def _tag(benchmark, *, workload, engine, protocol, n, interactions=None):
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["protocol"] = protocol
    benchmark.extra_info["n"] = n
    if interactions is not None:
        benchmark.extra_info["interactions_per_round"] = interactions


def _tail_snapshot(n):
    """A configuration with all but two agents ranked (the run's tail)."""
    simulator = Simulator(StableRanking(n), random_state=42)
    while True:
        simulator.run(max_interactions=20_000, stop_on_convergence=False)
        ranked = sum(
            1 for state in simulator.configuration.states if state.rank is not None
        )
        if ranked >= n - 2:
            return [state.copy() for state in simulator.configuration.states]


# ----------------------------------------------------------------------
# StableRanking n=128: trajectory-slice throughput
# ----------------------------------------------------------------------
def test_reference_simulator_throughput(benchmark):
    """Interactions per second of the agent-level simulator (StableRanking)."""
    protocol = StableRanking(STABLE_N)
    simulator = Simulator(protocol, random_state=0)

    def run():
        simulator.run(
            max_interactions=STABLE_INTERACTIONS, stop_on_convergence=False
        )

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload="stable_ranking_throughput",
        engine="reference",
        protocol="stable-ranking",
        n=STABLE_N,
        interactions=STABLE_INTERACTIONS,
    )


def test_array_engine_stable_ranking_throughput(benchmark):
    """Array-engine throughput (SoA kernel active) on the same workload.

    The cache is pre-warmed with the kernel *disabled* so the pair cache
    holds the trajectory's tabulation — the same steady state the
    kernel-less variant below measures.  The measured simulator runs with
    the kernel attached: chunks the cache already covers dispatch to the
    warm table path, novelty-bearing chunks stay on the kernel.
    """
    cache = EngineCache()
    ArraySimulator(
        StableRanking(STABLE_N), random_state=0, cache=cache,
        use_soa_kernel=False,
    ).run(max_interactions=6 * STABLE_INTERACTIONS, stop_on_convergence=False)
    simulator = ArraySimulator(StableRanking(STABLE_N), random_state=0, cache=cache)

    def run():
        simulator.run(
            max_interactions=STABLE_INTERACTIONS, stop_on_convergence=False
        )

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload="stable_ranking_throughput",
        engine="array",
        protocol="stable-ranking",
        n=STABLE_N,
        interactions=STABLE_INTERACTIONS,
    )


def test_array_engine_stable_ranking_throughput_nokernel(benchmark):
    """Tabulated-path throughput with the SoA kernel disabled.

    The cache is pre-warmed on the same seed, so rounds measure the table
    path (probes, elimination, walk) without the one-time tabulation cost —
    the regime repeated sweeps amortize into.
    """
    cache = EngineCache()
    ArraySimulator(
        StableRanking(STABLE_N), random_state=0, cache=cache,
        use_soa_kernel=False,
    ).run(max_interactions=6 * STABLE_INTERACTIONS, stop_on_convergence=False)
    simulator = ArraySimulator(
        StableRanking(STABLE_N), random_state=0, cache=cache,
        use_soa_kernel=False,
    )

    def run():
        simulator.run(
            max_interactions=STABLE_INTERACTIONS, stop_on_convergence=False
        )

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload="stable_ranking_throughput",
        engine="array-nokernel",
        protocol="stable-ranking",
        n=STABLE_N,
        interactions=STABLE_INTERACTIONS,
    )


# ----------------------------------------------------------------------
# StableRanking n=128: full runs to convergence
# ----------------------------------------------------------------------
def test_reference_full_run(benchmark):
    """Complete StableRanking n=128 runs on the reference simulator."""
    seeds = iter(range(1000, 2000))
    interactions = []

    def run():
        result = Simulator(StableRanking(STABLE_N), random_state=next(seeds)).run(
            max_interactions=FULL_RUN_BUDGET
        )
        assert result.converged
        interactions.append(result.interactions)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _tag(
        benchmark,
        workload="stable_ranking_full_run",
        engine="reference",
        protocol="stable-ranking",
        n=STABLE_N,
    )
    benchmark.extra_info["mean_interactions"] = float(np.mean(interactions))


def test_array_engine_full_run(benchmark):
    """Complete StableRanking n=128 runs on the array engine (shared cache).

    The protocol-provided SoA kernel is active (the default), so the
    write-heavy mid-run regime — coin toggles, liveness-counter churn,
    phase waves — runs on the vectorized fast path instead of the walk.
    """
    cache = EngineCache()
    seeds = iter(range(1000, 2000))
    # One cold run takes the brunt of the tabulation, as a sweep's first
    # repetition would.
    ArraySimulator(
        StableRanking(STABLE_N), random_state=next(seeds), cache=cache
    ).run(max_interactions=FULL_RUN_BUDGET)
    interactions = []

    def run():
        result = ArraySimulator(
            StableRanking(STABLE_N), random_state=next(seeds), cache=cache
        ).run(max_interactions=FULL_RUN_BUDGET)
        assert result.converged
        interactions.append(result.interactions)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _tag(
        benchmark,
        workload="stable_ranking_full_run",
        engine="array",
        protocol="stable-ranking",
        n=STABLE_N,
    )
    benchmark.extra_info["mean_interactions"] = float(np.mean(interactions))


def test_array_engine_full_run_nokernel(benchmark):
    """The same full runs with the SoA kernel disabled (walk-bound)."""
    cache = EngineCache()
    seeds = iter(range(1000, 2000))
    ArraySimulator(
        StableRanking(STABLE_N), random_state=next(seeds), cache=cache,
        use_soa_kernel=False,
    ).run(max_interactions=FULL_RUN_BUDGET)
    interactions = []

    def run():
        result = ArraySimulator(
            StableRanking(STABLE_N), random_state=next(seeds), cache=cache,
            use_soa_kernel=False,
        ).run(max_interactions=FULL_RUN_BUDGET)
        assert result.converged
        interactions.append(result.interactions)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _tag(
        benchmark,
        workload="stable_ranking_full_run",
        engine="array-nokernel",
        protocol="stable-ranking",
        n=STABLE_N,
    )
    benchmark.extra_info["mean_interactions"] = float(np.mean(interactions))


# ----------------------------------------------------------------------
# StableRanking n=128: stabilization tail
# ----------------------------------------------------------------------
def test_reference_tail_throughput(benchmark):
    """Reference throughput on the two-unranked stabilization tail."""
    snapshot = _tail_snapshot(STABLE_N)
    simulator = Simulator(
        StableRanking(STABLE_N),
        configuration=Configuration([s.copy() for s in snapshot]),
        random_state=1,
    )

    def run():
        simulator.run(max_interactions=TAIL_INTERACTIONS, stop_on_convergence=False)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload="stable_ranking_tail",
        engine="reference",
        protocol="stable-ranking",
        n=STABLE_N,
        interactions=TAIL_INTERACTIONS,
    )


def test_array_engine_tail_throughput(benchmark):
    """Array-engine throughput on the same tail (tabulated path)."""
    snapshot = _tail_snapshot(STABLE_N)
    cache = EngineCache()
    ArraySimulator(
        StableRanking(STABLE_N),
        configuration=Configuration([s.copy() for s in snapshot]),
        random_state=1,
        cache=cache,
    ).run(max_interactions=5 * TAIL_INTERACTIONS, stop_on_convergence=False)
    simulator = ArraySimulator(
        StableRanking(STABLE_N),
        configuration=Configuration([s.copy() for s in snapshot]),
        random_state=1,
        cache=cache,
    )

    def run():
        simulator.run(max_interactions=TAIL_INTERACTIONS, stop_on_convergence=False)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload="stable_ranking_tail",
        engine="array",
        protocol="stable-ranking",
        n=STABLE_N,
        interactions=TAIL_INTERACTIONS,
    )


# ----------------------------------------------------------------------
# StableRanking n=128: the many-seed study cell (batched replica engine)
# ----------------------------------------------------------------------
# The batched engine's target shape: one study cell = many seeds of one
# (protocol, n) coordinate.  Per-seed serial execution re-walks the pair
# table once per seed; the batched engine advances every seed in lockstep
# over ONE table walk, so the per-step Python dispatch and the one-time
# transition tabulation amortize across the whole group.  Three rows:
#
# ``array``             the pre-batching study behaviour — a fresh cache,
#                       then one ArraySimulator per seed (cold tabulation
#                       paid inside the measured round, like a worker
#                       process meeting the cell for the first time);
# ``array-batched``     the same seeds as one cold lockstep batch;
# ``array-batched-warm`` the batch against a pre-warmed shared cache —
#                       the amortized steady state repeated sweeps reach,
#                       and the engine's zero-tabulation floor;
# ``array-batched-persisted-warm``
#                       the batch in a FRESH cache bound to a populated
#                       on-disk table store — the cold-process/warm-store
#                       path (mmap the spilled pairs, remap codes, skip
#                       retabulation) that ``REPRO_TABLE_CACHE`` buys a
#                       worker meeting the cell for the first time.
#
# Tabulation is irreducible per-pair Python (the packed entries carry
# exact rank values), so the cold speedup is bounded by the warm row; see
# docs/benchmarks.md for the measured floor analysis.
STUDY_SEED_COUNT = (
    100
    if os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")
    else 32
)
STUDY_BUDGET = 200 * STABLE_N * STABLE_N


def _study_cell_seeds():
    return list(range(2000, 2000 + STUDY_SEED_COUNT))


def _run_study_cell_serial(cache):
    for seed in _study_cell_seeds():
        result = ArraySimulator(
            StableRanking(STABLE_N),
            random_state=seed,
            cache=cache,
            convergence_interval=STABLE_N,
        ).run(max_interactions=STUDY_BUDGET)
        assert result.converged


def _run_study_cell_batched(cache):
    from repro.core.batched_engine import BatchedArraySimulator

    simulator = BatchedArraySimulator(
        [StableRanking(STABLE_N) for _ in range(STUDY_SEED_COUNT)],
        random_states=[
            np.random.default_rng(seed) for seed in _study_cell_seeds()
        ],
        cache=cache,
        convergence_interval=STABLE_N,
    )
    results = simulator.run(STUDY_BUDGET)
    assert all(result.converged for result in results)


def _tag_study_cell(benchmark, engine):
    _tag(
        benchmark,
        workload="stable_ranking_study_cell",
        engine=engine,
        protocol="stable-ranking",
        n=STABLE_N,
    )
    benchmark.extra_info["seeds"] = STUDY_SEED_COUNT


def test_study_cell_per_seed_array(benchmark):
    """The 100-seed cell as the study ran it before batching existed."""
    benchmark.pedantic(
        lambda: _run_study_cell_serial(EngineCache()), rounds=1, iterations=1
    )
    _tag_study_cell(benchmark, "array")


def test_study_cell_batched_cold(benchmark):
    """The same cell as one lockstep batch, tabulating from scratch."""
    benchmark.pedantic(
        lambda: _run_study_cell_batched(EngineCache()), rounds=1, iterations=1
    )
    _tag_study_cell(benchmark, "array-batched")


def test_study_cell_batched_warm(benchmark):
    """The batch against a shared warm cache — the amortized floor."""
    cache = EngineCache()
    _run_study_cell_batched(cache)

    benchmark.pedantic(
        lambda: _run_study_cell_batched(cache), rounds=2, iterations=1
    )
    _tag_study_cell(benchmark, "array-batched-warm")


def test_study_cell_batched_persisted_warm(benchmark):
    """The batch in a fresh cache over a populated on-disk table store.

    One unmeasured cold run populates the store (tabulate + spill); every
    measured round then constructs a *fresh* ``EngineCache`` bound to the
    same store, so each round pays the real cold-process costs — open the
    spill, mmap the arrays, remap codes onto a new codec, recompute probe
    classes — but none of the per-pair tabulation.  This is the row the
    ≥1.7×-over-cold acceptance claim is measured against.
    """
    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "tables")
        writer = EngineCache(persist_dir=store)
        _run_study_cell_batched(writer)
        writer.spill()

        benchmark.pedantic(
            lambda: _run_study_cell_batched(EngineCache(persist_dir=store)),
            rounds=2,
            iterations=1,
        )
    _tag_study_cell(benchmark, "array-batched-persisted-warm")


# ----------------------------------------------------------------------
# One-way epidemic n=256 (dense tables)
# ----------------------------------------------------------------------
def test_epidemic_simulation_throughput(benchmark):
    """Interactions per second for the cheapest protocol (one-way epidemic)."""
    simulator = Simulator(OneWayEpidemicProtocol(EPIDEMIC_N), random_state=1)

    def run():
        simulator.run(
            max_interactions=EPIDEMIC_INTERACTIONS, stop_on_convergence=False
        )

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload="epidemic_throughput",
        engine="reference",
        protocol="one-way-epidemic",
        n=EPIDEMIC_N,
        interactions=EPIDEMIC_INTERACTIONS,
    )


def test_array_engine_epidemic_throughput(benchmark):
    """Dense-table array engine on the same epidemic workload."""
    simulator = ArraySimulator(OneWayEpidemicProtocol(EPIDEMIC_N), random_state=1)
    assert simulator.mode == "dense"

    def run():
        simulator.run(
            max_interactions=EPIDEMIC_INTERACTIONS, stop_on_convergence=False
        )

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload="epidemic_throughput",
        engine="array",
        protocol="one-way-epidemic",
        n=EPIDEMIC_N,
        interactions=EPIDEMIC_INTERACTIONS,
    )


# ----------------------------------------------------------------------
# Comparison baselines at n=64: matched reference/array pairs
# ----------------------------------------------------------------------
_BASELINES = {
    "burman-style-ranking": ("burman_throughput", BurmanStyleRanking),
    "cai-ranking": ("cai_throughput", CaiRanking),
    "token-counter-ranking": ("token_counter_throughput", TokenCounterRanking),
}


def _run_baseline(benchmark, protocol_name, engine):
    workload, factory = _BASELINES[protocol_name]
    if engine == "reference":
        simulator = Simulator(factory(BASELINE_N), random_state=0)
    else:
        cache = EngineCache()
        ArraySimulator(
            factory(BASELINE_N), random_state=0, cache=cache
        ).run(
            max_interactions=6 * BASELINE_INTERACTIONS,
            stop_on_convergence=False,
        )
        simulator = ArraySimulator(
            factory(BASELINE_N), random_state=0, cache=cache
        )

    def run():
        simulator.run(
            max_interactions=BASELINE_INTERACTIONS, stop_on_convergence=False
        )

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload=workload,
        engine=engine,
        protocol=protocol_name,
        n=BASELINE_N,
        interactions=BASELINE_INTERACTIONS,
    )


def test_reference_burman_throughput(benchmark):
    """Reference throughput of the Burman-style baseline (n=64)."""
    _run_baseline(benchmark, "burman-style-ranking", "reference")


def test_array_engine_burman_throughput(benchmark):
    """Array-engine (lazy tabulated path) throughput of the same workload."""
    _run_baseline(benchmark, "burman-style-ranking", "array")


def test_reference_cai_throughput(benchmark):
    """Reference throughput of the Cai collision-increment baseline (n=64)."""
    _run_baseline(benchmark, "cai-ranking", "reference")


def test_array_engine_cai_throughput(benchmark):
    """Array-engine throughput of the Cai baseline (bulk no-op elimination)."""
    _run_baseline(benchmark, "cai-ranking", "array")


def test_reference_token_counter_throughput(benchmark):
    """Reference throughput of the token-counter baseline (n=64)."""
    _run_baseline(benchmark, "token-counter-ranking", "reference")


def test_array_engine_token_counter_throughput(benchmark):
    """Array engine on the token counter: the declared object fallback.

    The GS leader-election substrate consumes randomness, so this measures
    the fallback's overhead relative to the reference (expected ≈ 1x) —
    the figure behind the auto resolver routing this protocol to the
    reference engine.
    """
    _run_baseline(benchmark, "token-counter-ranking", "array")


# ----------------------------------------------------------------------
# Event-driven aggregate engine (unchanged reference point)
# ----------------------------------------------------------------------
def test_aggregate_engine_full_run(benchmark):
    """Full SpaceEfficientRanking executions at n = 4096 via the event engine."""
    seeds = iter(range(10_000))

    def run():
        engine = AggregateSpaceEfficientRanking(4096, random_state=next(seeds))
        outcome = engine.run(max_interactions=10**14)
        assert outcome.converged
        return outcome

    benchmark.pedantic(run, rounds=3, iterations=1)
    _tag(
        benchmark,
        workload="aggregate_full_run",
        engine="aggregate",
        protocol="space-efficient-ranking",
        n=4096,
    )


# ----------------------------------------------------------------------
# Group-count engine: million-agent scale rows
# ----------------------------------------------------------------------
GROUP_SIZES = (8192, 100_000, 1_000_000)
GROUP_EVENT_BUDGET = 256


def _count_profile(protocol, model):
    """Collapse the designated initial configuration to (state, count) pairs.

    Protocols without a ``count_profile`` declaration still have compact
    fresh starts; the collapse happens once, outside the timed rounds, so
    the rows measure the engine rather than n object materializations.
    """
    profile = protocol.count_profile()
    if profile is not None:
        return profile
    codec = model.codec
    counts = {}
    for state in protocol.initial_configuration():
        code = codec.encode(state)
        counts[code] = counts.get(code, 0) + 1
    return [(codec.prototype(code), count) for code, count in counts.items()]


def _run_group_full(benchmark, factory, protocol_name, n, workload):
    from repro.core.group_engine import GroupCountSimulator, GroupTransitionModel

    protocol = factory(n)
    model = GroupTransitionModel(protocol)
    profile = _count_profile(protocol, model)
    seeds = iter(range(100))
    interactions = []

    def run():
        simulator = GroupCountSimulator(
            protocol, state_counts=profile, model=model,
            random_state=next(seeds),
        )
        result = simulator.run(max_interactions=10**18)
        assert result.converged
        interactions.append(result.interactions)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload=workload,
        engine="group",
        protocol=protocol_name,
        n=n,
    )
    benchmark.extra_info["mean_interactions"] = float(np.mean(interactions))


def _run_group_budgeted(benchmark, factory, protocol_name, n, workload):
    from repro.core.group_engine import GroupCountSimulator, GroupTransitionModel

    protocol = factory(n)
    model = GroupTransitionModel(protocol)
    profile = _count_profile(protocol, model)

    def run():
        simulator = GroupCountSimulator(
            protocol, state_counts=profile, model=model, random_state=0
        )
        result = simulator.run(
            max_interactions=10**18, max_events=GROUP_EVENT_BUDGET
        )
        assert result.events == GROUP_EVENT_BUDGET

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload=workload,
        engine="group",
        protocol=protocol_name,
        n=n,
    )
    benchmark.extra_info["events_per_round"] = GROUP_EVENT_BUDGET


def test_group_epidemic_full_run_8192(benchmark):
    """Full epidemic at n=8192 on the group-count engine (n-1 events)."""
    _run_group_full(
        benchmark, OneWayEpidemicProtocol, "one-way-epidemic", 8192,
        "group_epidemic_full_run_8192",
    )


def test_reference_epidemic_full_run_8192(benchmark):
    """The matched agent-level run — the speedup denominator at n=8192."""
    seeds = iter(range(100))
    interactions = []

    def run():
        result = Simulator(
            OneWayEpidemicProtocol(8192), random_state=next(seeds)
        ).run(max_interactions=10**9)
        assert result.converged
        interactions.append(result.interactions)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    _tag(
        benchmark,
        workload="group_epidemic_full_run_8192",
        engine="reference",
        protocol="one-way-epidemic",
        n=8192,
    )
    benchmark.extra_info["mean_interactions"] = float(np.mean(interactions))


def test_group_epidemic_full_run_100k(benchmark):
    _run_group_full(
        benchmark, OneWayEpidemicProtocol, "one-way-epidemic", 100_000,
        "group_epidemic_full_run_100000",
    )


def test_group_epidemic_full_run_1m(benchmark):
    """The ISSUE's acceptance cell: a full epidemic at one million agents."""
    _run_group_full(
        benchmark, OneWayEpidemicProtocol, "one-way-epidemic", 1_000_000,
        "group_epidemic_full_run_1000000",
    )


def test_group_stable_ranking_event_throughput(benchmark):
    """Budgeted StableRanking slices at n=10^6 (Θ(n)-state protocols run
    the count process exactly but cannot tabulate to convergence)."""
    _run_group_budgeted(
        benchmark, StableRanking, "stable-ranking", 1_000_000,
        "group_stable_ranking_events_1000000",
    )


def test_group_burman_event_throughput(benchmark):
    _run_group_budgeted(
        benchmark, BurmanStyleRanking, "burman-style-ranking", 1_000_000,
        "group_burman_events_1000000",
    )


def test_group_cai_event_throughput(benchmark):
    _run_group_budgeted(
        benchmark, CaiRanking, "cai-ranking", 1_000_000,
        "group_cai_events_1000000",
    )


# ----------------------------------------------------------------------
# Aggregate engine at paper-and-beyond scale (the space-efficient rows)
# ----------------------------------------------------------------------
def _run_aggregate_full(benchmark, n, rounds):
    seeds = iter(range(10_000))
    interactions = []

    def run():
        engine = AggregateSpaceEfficientRanking(n, random_state=next(seeds))
        outcome = engine.run(max_interactions=10**15)
        assert outcome.converged
        interactions.append(outcome.interactions)

    benchmark.pedantic(run, rounds=rounds, iterations=1)
    _tag(
        benchmark,
        workload=f"aggregate_full_run_{n}",
        engine="aggregate",
        protocol="space-efficient-ranking",
        n=n,
    )
    benchmark.extra_info["mean_interactions"] = float(np.mean(interactions))


def test_aggregate_engine_full_run_8192(benchmark):
    """Full SpaceEfficientRanking at n=8192 (the paper's largest size)."""
    _run_aggregate_full(benchmark, 8192, rounds=3)


def test_aggregate_engine_full_run_100k(benchmark):
    _run_aggregate_full(benchmark, 100_000, rounds=3)


def test_aggregate_engine_full_run_1m(benchmark):
    """The ISSUE's acceptance cell: space-efficient ranking at n=10^6 on
    its count-level engine, single-digit seconds per full run."""
    _run_aggregate_full(benchmark, 1_000_000, rounds=1)
