"""Micro-benchmarks of the simulation engines themselves.

Not a paper artifact — these measure the raw throughput of the agent-level
reference simulator and of the exact event-driven engine, which is what
makes the paper-scale Figure 3 sweep feasible in Python.
"""

from repro.core.simulation import Simulator
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.aggregate_space_efficient import (
    AggregateSpaceEfficientRanking,
)
from repro.protocols.ranking.stable_ranking import StableRanking


def test_reference_simulator_throughput(benchmark):
    """Interactions per second of the agent-level simulator (StableRanking)."""
    n = 128
    protocol = StableRanking(n)
    simulator = Simulator(protocol, random_state=0)
    interactions_per_round = 20_000

    def run():
        simulator.run(max_interactions=interactions_per_round, stop_on_convergence=False)

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["interactions_per_round"] = interactions_per_round


def test_epidemic_simulation_throughput(benchmark):
    """Interactions per second for the cheapest protocol (one-way epidemic)."""
    n = 256
    simulator = Simulator(OneWayEpidemicProtocol(n), random_state=1)
    interactions_per_round = 50_000

    def run():
        simulator.run(max_interactions=interactions_per_round, stop_on_convergence=False)

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["interactions_per_round"] = interactions_per_round


def test_aggregate_engine_full_run(benchmark):
    """Full SpaceEfficientRanking executions at n = 4096 via the event engine."""
    seeds = iter(range(10_000))

    def run():
        engine = AggregateSpaceEfficientRanking(4096, random_state=next(seeds))
        outcome = engine.run(max_interactions=10**14)
        assert outcome.converged
        return outcome

    benchmark.pedantic(run, rounds=3, iterations=1)
