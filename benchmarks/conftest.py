"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (see the
per-experiment index in DESIGN.md).  By default the benchmarks run a reduced
parameterization that completes in a few minutes on a laptop; set the
environment variable ``REPRO_BENCH_FULL=1`` to run the paper-scale versions
(Figure 3 up to ``n = 8192`` with 100 repetitions, Figure 2 at ``n = 256``).

Each benchmark writes its regenerated table/series to ``results/`` (text and
CSV) so the numbers quoted in EXPERIMENTS.md can be traced back to a file.
"""

import os
from pathlib import Path

import pytest


def full_scale() -> bool:
    """Whether the paper-scale parameterization was requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "no")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory benchmark artifacts are written to."""
    directory = Path(__file__).resolve().parent.parent / "results"
    directory.mkdir(parents=True, exist_ok=True)
    return directory


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    """Session-wide flag for the paper-scale parameterization."""
    return full_scale()
