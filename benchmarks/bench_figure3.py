"""Benchmark E2 — regenerate the paper's Figure 3.

``SpaceEfficientRanking`` started from one unaware leader with rank 1 and
``n - 1`` leader-electing agents: interactions (normalized by ``n²``) until
the fractions 1/2, 3/4, 7/8 and 15/16 of agents are ranked, per population
size.  Uses the exact event-driven engine so the paper's full range of sizes
is reachable.  Results go to ``results/figure3.csv`` / ``figure3.txt``.

Default: ``n ∈ {128 … 2048}``, 20 runs per size; with ``REPRO_BENCH_FULL=1``:
the paper's ``n ∈ {128 … 8192}`` with 100 runs per size.
"""

from repro.experiments.figure3 import PAPER_FRACTIONS, format_figure3, run_figure3
from repro.experiments.recording import write_csv

DEFAULT_SIZES = (128, 256, 512, 1024, 2048)
PAPER_SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)


def test_figure3_time_to_rank_fractions(benchmark, results_dir, paper_scale):
    n_values = PAPER_SIZES if paper_scale else DEFAULT_SIZES
    repetitions = 100 if paper_scale else 20

    def run():
        return run_figure3(
            n_values=n_values,
            fractions=PAPER_FRACTIONS,
            repetitions=repetitions,
            engine="aggregate",
            random_state=2024,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    write_csv(results_dir / "figure3.csv", result.rows())
    (results_dir / "figure3.txt").write_text(format_figure3(result))

    for fraction in PAPER_FRACTIONS:
        benchmark.extra_info[f"frac_{fraction}_at_nmax"] = round(
            result.mean(n_values[-1], fraction), 3
        )

    # Shape checks mirroring the paper's figure:
    # (a) for each n, later fractions take longer;
    # (b) the normalized time per fraction is essentially flat in n
    #     (ranking a constant fraction costs Θ(n²) interactions).
    for n in n_values:
        times = [result.mean(n, fraction) for fraction in PAPER_FRACTIONS]
        assert times == sorted(times)
    for fraction in PAPER_FRACTIONS:
        series = [result.mean(n, fraction) for n in n_values]
        assert max(series) / min(series) < 2.0
