#!/usr/bin/env python3
"""Run the engine benchmark suite and write a machine-readable summary.

Executes ``benchmarks/bench_engine.py`` under pytest-benchmark, reduces the
raw timings to interactions-per-second per (workload, engine, protocol, n),
and writes ``BENCH_engine.json`` at the repository root together with the
per-workload speedup of every engine over the reference simulator (the
``array`` engine with its SoA kernel, and ``array-nokernel`` with the
kernel disabled, on the full-run workload).  The file is checked in so
future changes have a perf trajectory to compare against — rerun this
script after touching the engines or kernels and eyeball the deltas.

Usage::

    python benchmarks/run_benchmarks.py              # rewrite BENCH_engine.json
    python benchmarks/run_benchmarks.py --output /tmp/bench.json

The script needs no PYTHONPATH setup (it injects ``src`` itself) and takes
a few minutes: the full-run workloads simulate ~1M-interaction
StableRanking trajectories to convergence, three rounds per engine.  The
printed table mirrors the ``speedups`` section of the JSON:

    stable_ranking_full_run: array 3,900,000/s vs reference 320,000/s -> 12.2x

See ``docs/benchmarks.md`` for how to read the output and what the
workloads mean, and ``docs/engines.md`` for the engine architecture being
measured.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "bench_engine.py"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"


def run_pytest_benchmark(json_path: Path) -> None:
    """Run the bench_engine suite, exporting raw results to ``json_path``."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "-q",
        "-p",
        "no:cacheprovider",
        f"--benchmark-json={json_path}",
    ]
    source_path = str(REPO_ROOT / "src")
    existing = os.environ.get("PYTHONPATH")
    environment = {
        **os.environ,
        "PYTHONPATH": (
            source_path if not existing else source_path + os.pathsep + existing
        ),
    }
    completed = subprocess.run(command, cwd=REPO_ROOT, env=environment)
    if completed.returncode != 0:
        raise SystemExit(f"benchmark suite failed (exit {completed.returncode})")


def summarize(raw: dict) -> dict:
    """Reduce pytest-benchmark output to per-workload engine entries."""
    entries = []
    for bench in raw.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        mean = bench["stats"]["mean"]
        entry = {
            "name": bench["name"],
            "workload": extra.get("workload", bench["name"]),
            "engine": extra.get("engine", "unknown"),
            "protocol": extra.get("protocol"),
            "n": extra.get("n"),
            "mean_seconds": mean,
            "stddev_seconds": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
        }
        interactions = extra.get("interactions_per_round") or extra.get(
            "mean_interactions"
        )
        if interactions:
            entry["interactions_per_round"] = interactions
            entry["interactions_per_sec"] = interactions / mean
        entries.append(entry)

    speedups = {}
    by_workload: dict = {}
    for entry in entries:
        by_workload.setdefault(entry["workload"], {})[entry["engine"]] = entry
    for workload, engines in by_workload.items():
        reference = engines.get("reference")
        if not (reference and reference.get("interactions_per_sec")):
            continue
        figures = {
            "reference_interactions_per_sec": reference["interactions_per_sec"],
        }
        for engine, entry in engines.items():
            if engine == "reference" or not entry.get("interactions_per_sec"):
                continue
            figures[f"{engine}_interactions_per_sec"] = entry[
                "interactions_per_sec"
            ]
            figures[f"{engine}_over_reference"] = (
                entry["interactions_per_sec"]
                / reference["interactions_per_sec"]
            )
        if len(figures) > 1:
            speedups[workload] = figures

    return {
        "suite": "bench_engine",
        "generated_by": "benchmarks/run_benchmarks.py",
        "unix_time": int(time.time()),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or None,
        },
        "benchmarks": sorted(
            entries, key=lambda item: (item["workload"], item["engine"])
        ),
        "speedups": speedups,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the summary (default: {DEFAULT_OUTPUT})",
    )
    arguments = parser.parse_args()

    with tempfile.TemporaryDirectory() as scratch:
        json_path = Path(scratch) / "raw_benchmarks.json"
        run_pytest_benchmark(json_path)
        raw = json.loads(json_path.read_text())

    summary = summarize(raw)
    arguments.output.write_text(json.dumps(summary, indent=2, sort_keys=False) + "\n")
    print(f"wrote {arguments.output}")
    for workload, figures in summary["speedups"].items():
        reference = figures["reference_interactions_per_sec"]
        for key, value in figures.items():
            if not key.endswith("_over_reference"):
                continue
            engine = key[: -len("_over_reference")]
            print(
                f"  {workload}: {engine} "
                f"{figures[engine + '_interactions_per_sec']:,.0f}/s"
                f" vs reference {reference:,.0f}/s -> {value:.1f}x"
            )


if __name__ == "__main__":
    main()
